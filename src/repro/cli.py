"""Command-line interface: run canned SenSORCER scenarios from a shell.

Usage (also via ``python -m repro``)::

    python -m repro inventory   [--seed N]        # Fig 2 service listing
    python -m repro experiment  [--seed N]        # the §VI six-step run
    python -m repro value NAME  [--seed N]        # read one sensor service
    python -m repro farm        [--seed N] [--fields K] [--sensors M]
    python -m repro topology    [--seed N]        # logical network tree
    python -m repro status      [--seed N] [--json]   # health tree
    python -m repro health      [--seed N] [--json]   # SLOs + alerts
    python -m repro load        [--seed N] [--json]   # open-loop overload
    python -m repro profile [SCENARIO] [--spill DB]   # flight recorder
    python -m repro history --db DB list|keys|series|stats|profile
    python -m repro chaos run --seeds N [--json]      # fault campaigns
    python -m repro chaos shrink --chaos-seed S       # minimize a failure
    python -m repro chaos replay --plan plan.json     # re-run a plan
    python -m repro snapshot --at T --out F.snap      # checkpoint a run
    python -m repro restore F.snap [--verify-only]    # replay + continue
    python -m repro lint PATH...                      # determinism lint

Everything runs a fresh, seeded simulation; same seed, same output.
``lint`` is the odd one out: a static pass over source files, no
simulation (and no scenario dependencies — scenario imports stay lazy so
the lint path works in minimal environments).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SenSORCER reproduction — sensor-federated networks "
                    "on a deterministic simulator")
    parser.add_argument("--seed", type=int, default=2009,
                        help="scenario seed (default: 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory",
                   help="deploy the paper lab and list registered services")

    sub.add_parser("experiment",
                   help="run the paper's six-step Fig 3 experiment")

    value = sub.add_parser("value", help="read one sensor service's value")
    value.add_argument("name", help="service name, e.g. Neem-Sensor")

    farm = sub.add_parser("farm", help="field-subnet monitoring demo")
    farm.add_argument("--fields", type=int, default=3)
    farm.add_argument("--sensors", type=int, default=4)

    sub.add_parser("topology",
                   help="compose the Fig 3 network and print the tree")

    sub.add_parser("traffic",
                   help="run the experiment and print per-kind traffic")

    watch = sub.add_parser("watch", help="sample sensors over time")
    watch.add_argument("names", nargs="+", help="service names to watch")
    watch.add_argument("--interval", type=float, default=5.0)
    watch.add_argument("--rounds", type=int, default=6)

    sub.add_parser("admin",
                   help="registry admin view: registrations + leases")

    trace = sub.add_parser(
        "trace",
        help="run the six-step experiment and print its span trees")
    trace.add_argument("--all", action="store_true", dest="show_all",
                       help="include infrastructure traces (lookups, lease "
                            "renewals), not just exertion-rooted trees")
    trace.add_argument("--no-annotations", action="store_true",
                       help="hide span annotations (retries, breaker events)")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the metrics registry table")
    trace.add_argument("--out", metavar="PATH",
                       help="dump the trace + metrics as JSON lines to PATH")
    trace.add_argument("--since", type=float, metavar="T",
                       help="only trees rooted at or after simulated second T")
    trace.add_argument("--until", type=float, metavar="T",
                       help="only trees rooted at or before simulated "
                            "second T")
    trace.add_argument("--limit", type=int, metavar="N",
                       help="print at most the first N matching trees")

    for name, summary in (("status", "network -> node -> provider health "
                                     "tree after the six-step experiment"),
                          ("health", "SLO standing, alert log and status "
                                     "transitions")):
        cmd = sub.add_parser(name, help=summary)
        cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the canonical JSON snapshot instead")
        cmd.add_argument("--until", type=float, default=30.0,
                         help="simulated seconds to run before the snapshot "
                              "(default: 30)")
        cmd.add_argument("--quiet-lab", action="store_true",
                         help="skip the six-step experiment, observe an "
                              "idle lab")

    load = sub.add_parser(
        "load",
        help="open-loop multi-tenant load against the protected lab "
             "(admission control, quotas, weighted-fair dispatch)")
    load.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the canonical JSON summary instead")
    load.add_argument("--duration", type=float, default=8.0,
                      help="simulated seconds of traffic (default: 8)")
    load.add_argument("--scale", type=float, default=1.5,
                      help="offered-load multiplier over the default tenant "
                           "mix; >=1.5 is past the knee (default: 1.5)")
    load.add_argument("--curve", action="store_true",
                      help="sweep the E-LOAD saturation curve (fresh lab "
                           "per point) instead of one operating point")
    load.add_argument("--smoke", action="store_true",
                      help="with --curve: the short 3-point smoke sweep")

    profile = sub.add_parser(
        "profile",
        help="wall-clock flight recorder over a scenario run: top-N "
             "attribution, scheduler internals, service times")
    profile.add_argument("scenario", nargs="?", default="six-steps",
                         choices=["six-steps", "quiet", "soak"],
                         help="six-steps (default): the Fig 3 experiment; "
                              "quiet: an idle lab; soak: a long steady-"
                              "state run (default horizon 21600s, ~1M "
                              "events)")
    profile.add_argument("--until", type=float, default=None,
                         help="simulated seconds to record (default: 30; "
                              "soak: 21600)")
    profile.add_argument("--top", type=int, default=12,
                         help="attribution rows to print (default: 12)")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full report as canonical JSON "
                              "(wall-clock fields vary run to run)")
    profile.add_argument("--spill", metavar="PATH",
                         help="also spill telemetry windows + this profile "
                              "to a sqlite history file at PATH")
    profile.add_argument("--run-id",
                         help="history run id for --spill "
                              "(default: <scenario>-seed<seed>)")

    history = sub.add_parser(
        "history",
        help="query a spilled sqlite telemetry history: past runs, "
             "windowed series, p50/p95 over any horizon")
    history.add_argument("--db", metavar="PATH", required=True,
                         help="history sqlite file (written by "
                              "profile --spill or HistoryStore)")
    hist_sub = history.add_subparsers(dest="history_command", required=True)
    h_list = hist_sub.add_parser("list", help="recorded runs")
    h_keys = hist_sub.add_parser("keys",
                                 help="metric keys with spilled windows")
    h_series = hist_sub.add_parser(
        "series", help="one metric's windowed series for a run")
    h_stats = hist_sub.add_parser(
        "stats", help="aggregate one metric over a time horizon")
    h_profile = hist_sub.add_parser(
        "profile", help="a run's spilled flight-recorder attribution")
    for cmd in (h_list, h_keys, h_series, h_stats, h_profile):
        cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="emit canonical JSON instead")
    for cmd in (h_keys, h_series, h_stats, h_profile):
        cmd.add_argument("--run", required=True, metavar="ID",
                         help="run id (see: history list)")
    h_keys.add_argument("--prefix", default="",
                        help="restrict to keys with this prefix")
    for cmd in (h_series, h_stats):
        cmd.add_argument("key", help="metric key, e.g. "
                                     "'rpc.rtt{host=facade-host}'")
        cmd.add_argument("--since", type=float, metavar="T",
                         help="windows ending at or after simulated "
                              "second T")
        cmd.add_argument("--until", type=float, metavar="T",
                         help="windows ending at or before simulated "
                              "second T")
    h_series.add_argument("--limit", type=int, metavar="N",
                          help="keep only the newest N windows")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault campaigns: run, shrink, replay (exit 1 when "
             "any invariant fails)")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run", help="run N seeded campaigns and judge the invariants")
    chaos_shrink = chaos_sub.add_parser(
        "shrink", help="minimize one failing seed's fault schedule")
    chaos_replay = chaos_sub.add_parser(
        "replay", help="re-run a (possibly shrunk) plan JSON bit-for-bit")
    for cmd in (chaos_run, chaos_shrink, chaos_replay):
        cmd.add_argument("--scenario", default="paper-lab",
                         help="scenario under attack (default: paper-lab)")
        cmd.add_argument("--horizon", type=float, default=90.0,
                         help="simulated seconds per campaign run "
                              "(default: 90)")
        cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the canonical JSON verdicts instead")
    chaos_run.add_argument("--seeds", type=int, default=10,
                           help="number of campaign seeds (default: 10)")
    chaos_run.add_argument("--seed-start", type=int, default=1,
                           help="first campaign seed (default: 1)")
    chaos_shrink.add_argument("--chaos-seed", type=int, required=True,
                              help="the failing campaign seed to shrink")
    chaos_shrink.add_argument("--max-runs", type=int, default=60,
                              help="re-run budget for shrinking "
                                   "(default: 60)")
    chaos_shrink.add_argument("--out", metavar="PATH",
                              help="write the minimal plan JSON to PATH")
    chaos_shrink.add_argument("--warm", action="store_true",
                              help="probe shrink candidates by forking from "
                                   "one shared settled prefix instead of "
                                   "rebuilding per probe (minimum is re-"
                                   "validated cold; falls back to cold "
                                   "shrinking if it does not reproduce)")
    chaos_replay.add_argument("--plan", metavar="PATH", required=True,
                              help="plan JSON emitted by run/shrink")

    snap = sub.add_parser(
        "snapshot",
        help="run a recorded program and write a crash-safe checkpoint of "
             "the whole federation at a chosen simulated time")
    snap.add_argument("--at", type=float, required=True, metavar="T",
                      help="simulated second at which to capture the state")
    snap.add_argument("--out", metavar="PATH", required=True,
                      help="snapshot file to write (atomic: temp file, "
                           "fsync, rename)")
    snap.add_argument("--program", default="status",
                      choices=["status", "campaign"],
                      help="recorded program kind (default: status)")
    snap.add_argument("--until", type=float, default=30.0,
                      help="status program: simulated seconds to run "
                           "(default: 30)")
    snap.add_argument("--quiet-lab", action="store_true",
                      help="status program: skip the six-step experiment")
    snap.add_argument("--scenario", default="paper-lab",
                      help="campaign program: scenario under attack "
                           "(default: paper-lab)")
    snap.add_argument("--horizon", type=float, default=90.0,
                      help="campaign program: simulated seconds "
                           "(default: 90)")
    snap.add_argument("--chaos-seed", type=int, default=1,
                      help="campaign program: seed whose derived fault "
                           "plan to run (default: 1)")

    restore = sub.add_parser(
        "restore",
        help="rebuild a snapshot's program in this process, verify the "
             "replayed state digest at the checkpoint, then continue")
    restore.add_argument("snapshot", metavar="PATH",
                         help="snapshot file written by `repro snapshot`")
    restore.add_argument("--verify-only", action="store_true",
                         help="stop after the digest check at the "
                              "checkpoint instant; do not continue the run")
    restore.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the continued run's canonical primary "
                              "output (status/verdict JSON) instead of a "
                              "summary")
    restore.add_argument("--spill", metavar="DB",
                         help="record this resumed run in a sqlite history "
                              "file, marked with the snapshot's digest")
    restore.add_argument("--run-id",
                         help="history run id for --spill "
                              "(default: restore-<program kind>)")

    lint = sub.add_parser(
        "lint",
        help="whole-program static analysis over python sources "
             "(DET/SIM/RES/CTX/API rules; exits 1 on findings)")
    lint.add_argument("paths", nargs="+", metavar="PATH",
                      help="files or directories to lint")
    lint.add_argument("--rule", action="append", dest="rule_ids",
                      metavar="RULE",
                      help="restrict to this rule id or family prefix, "
                           "e.g. RES001 or RES (repeatable)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="canonical JSON report")
    lint.add_argument("--sarif", action="store_true",
                      help="SARIF 2.1.0 report (canonical, byte-stable)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings listed in this baseline file")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="write current findings as a baseline and exit 0")
    return parser


def _lab(seed: int):
    from .scenarios import build_paper_lab
    lab = build_paper_lab(seed=seed)
    lab.settle(6.0)
    return lab


def cmd_inventory(args, out) -> int:
    lab = _lab(args.seed)
    items = sorted(lab.lus.lookup_all(), key=lambda i: i.name() or "")
    out.write(f"{len(items)} services registered "
              f"(t={lab.env.now:.1f}s simulated):\n")
    for item in items:
        types = "/".join(t for t in item.service.type_names if t != "Servicer")
        out.write(f"  {item.name():<26} {item.service.host:<16} {types}\n")
    return 0


def _run_six_steps(lab):
    # The experiment body lives with the snapshot programs so a CLI run
    # and a snapshot/restore replay are the same event sequence.
    from .snapshot.programs import six_step_experiment
    return lab.env.run(until=lab.env.process(
        six_step_experiment(lab.browser), name="six-steps"))


def cmd_experiment(args, out) -> int:
    lab = _lab(args.seed)
    value = _run_six_steps(lab)
    out.write(lab.browser.render_info_pane() + "\n\n")
    out.write(f"New-Composite value: {value:.3f} C "
              f"(t={lab.env.now:.1f}s simulated)\n")
    return 0


def cmd_value(args, out) -> int:
    lab = _lab(args.seed)
    from .core import BrowserError
    try:
        value = lab.env.run(until=lab.env.process(
            lab.browser.get_value(args.name)))
    except BrowserError as exc:
        out.write(f"error: {exc}\n")
        return 1
    out.write(f"{args.name}: {value:.3f}\n")
    return 0


def cmd_farm(args, out) -> int:
    from .scenarios import build_farm
    farm = build_farm(seed=args.seed, n_fields=args.fields,
                      sensors_per_field=args.sensors)
    farm.settle(6.0)
    browser = farm.browser
    temp_sensors = {
        field: [esp.name for esp in esps
                if esp.probe.teds.quantity == "temperature"]
        for field, esps in farm.fields.items()}

    def session():
        values = {}
        for field, names in temp_sensors.items():
            yield from browser.compose_service(field, names)
            values[field] = yield from browser.get_value(field)
        return values

    values = farm.env.run(until=farm.env.process(session()))
    out.write(f"farm with {args.fields} fields x {args.sensors} stations:\n")
    for field in sorted(values):
        truth = farm.ground_truth_field_mean(field, "temperature")
        out.write(f"  {field:<10} {values[field]:7.2f} C "
                  f"(ground truth {truth:7.2f} C)\n")
    return 0


def cmd_topology(args, out) -> int:
    lab = _lab(args.seed)
    _run_six_steps(lab)
    out.write(lab.browser.render_topology() + "\n")
    return 0


def cmd_traffic(args, out) -> int:
    from .metrics import render_traffic
    lab = _lab(args.seed)
    _run_six_steps(lab)
    out.write(render_traffic(
        lab.net.stats,
        title=f"Traffic after the six-step experiment "
              f"(t={lab.env.now:.1f}s simulated)") + "\n")
    return 0


def cmd_watch(args, out) -> int:
    lab = _lab(args.seed)
    lab.env.run(until=lab.env.process(
        lab.browser.watch(args.names, interval=args.interval,
                          rounds=args.rounds)))
    out.write(lab.browser.render_watch_pane() + "\n")
    return 0


def cmd_admin(args, out) -> int:
    lab = _lab(args.seed)
    lab.env.run(until=lab.env.process(lab.browser.registry_admin()))
    out.write(lab.browser.render_admin_pane() + "\n")
    return 0


def cmd_trace(args, out) -> int:
    from .observability import (
        dump_jsonl,
        metrics_registry,
        render_span_tree,
        tracer_of,
    )
    lab = _lab(args.seed)
    _run_six_steps(lab)
    tracer = tracer_of(lab.net)
    registry = metrics_registry(lab.net)
    roots = tracer.roots()
    if not args.show_all:
        # Infrastructure chatter (lookup registrations, lease renewals)
        # roots hundreds of tiny trees; default to the exertion traffic.
        roots = [root for root in roots if root.kind in ("exert", "serve")]
    candidates = len(roots)
    if args.since is not None:
        roots = [root for root in roots if root.started_at >= args.since]
    if args.until is not None:
        roots = [root for root in roots if root.started_at <= args.until]
    matched = len(roots)
    if args.limit is not None and matched > args.limit:
        roots = roots[:args.limit]
    shown = (f"showing {len(roots)} of {matched} matching tree(s)"
             if matched != candidates or len(roots) != matched
             else f"showing {len(roots)} tree(s)")
    out.write(f"{len(tracer)} spans recorded, {shown} "
              f"(t={lab.env.now:.1f}s simulated)\n\n")
    out.write(render_span_tree(tracer, roots,
                               annotations=not args.no_annotations) + "\n")
    if args.metrics:
        from .metrics import render_metrics
        out.write("\n" + render_metrics(registry.snapshot()) + "\n")
    if args.out:
        lines = dump_jsonl(args.out, tracer, registry)
        out.write(f"\nwrote {lines} JSON lines to {args.out}\n")
    return 0


def _health_snapshot(args):
    """Deploy the lab, optionally run the six steps, settle to a fixed
    simulation time and take one management-plane snapshot."""
    lab = _lab(args.seed)
    if not args.quiet_lab:
        _run_six_steps(lab)
    if lab.env.now < args.until:
        lab.env.run(until=args.until)
    return lab, lab.health.snapshot()


def cmd_status(args, out) -> int:
    from .observability import render_status, status_json
    lab, snapshot = _health_snapshot(args)
    if args.as_json:
        # Deliberately no kernel line here: scheduler stats vary with the
        # kernel choice and tie-break shuffling, and the canonical JSON is
        # byte-identical across both (DESIGN §12).
        out.write(status_json(snapshot, seed=args.seed))
    else:
        out.write(render_status(
            snapshot, title=f"SenSORCER network (seed {args.seed})") + "\n")
        sched = lab.env.scheduler_stats()
        out.write(f"\nkernel: {sched['kind']} scheduler, "
                  f"{sched['pending']} pending, pushes={sched['pushes']} "
                  f"pops={sched['pops']} cancels={sched['cancels']}"
                  + (f" resizes={sched['resizes']} heals={sched['heals']} "
                     f"occupancy-hw={sched['occupancy_hw']}"
                     if "resizes" in sched else "") + "\n")
    return 0


def cmd_health(args, out) -> int:
    from .observability import render_health, status_json
    lab, snapshot = _health_snapshot(args)
    if args.as_json:
        out.write(status_json(snapshot, seed=args.seed))
    else:
        out.write(render_health(snapshot) + "\n")
    return 0


def _canonical_json(obj) -> str:
    import json
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def _fmt_latency(latency: dict) -> tuple:
    return tuple("-" if latency[q] is None else f"{latency[q]:.3f}"
                 for q in ("p50", "p95", "p99"))


def cmd_load(args, out) -> int:
    from .load import SWEEP_FULL, SWEEP_SMOKE, build_load_lab, saturation_curve
    from .metrics import render_table
    if args.curve:
        sweep = SWEEP_SMOKE if args.smoke else SWEEP_FULL
        curve = saturation_curve(seed=args.seed, multipliers=sweep,
                                 duration=args.duration)
        if args.as_json:
            out.write(_canonical_json(curve))
            return 0
        rows = []
        for point in curve["points"]:
            p50, p95, p99 = _fmt_latency(point["latency"])
            rows.append([f"{point['scale']:g}x", point["offered"],
                         point["completed"], point["goodput"],
                         point["rejected"], point["failed"],
                         f"{point['goodput_rate']:.3f}"
                         if point["goodput_rate"] is not None else "-",
                         p50, p99])
        out.write(render_table(
            ["scale", "offered", "completed", "goodput", "rejected",
             "failed", "goodput%", "p50", "p99"], rows,
            title=f"E-LOAD saturation curve (seed {args.seed}, "
                  f"{curve['duration']:g}s per point)") + "\n")
        return 0
    load_lab = build_load_lab(seed=args.seed, duration=args.duration,
                              scale=args.scale)
    summary = load_lab.run()
    if args.as_json:
        out.write(_canonical_json(summary))
        return 0
    rows = []
    for name, entry in summary["tenants"].items():
        p50, p95, p99 = _fmt_latency(entry["latency"])
        shed = ",".join(f"{reason}:{count}"
                        for reason, count in entry["rejected"].items())
        rows.append([name, f"{entry['rate']:g}/s", f"{entry['weight']:g}",
                     entry["offered"], entry["completed"], entry["goodput"],
                     entry["rejected_total"], entry["failed"],
                     p50, p99, shed or "-"])
    total = summary["total"]
    out.write(render_table(
        ["tenant", "rate", "wt", "offered", "completed", "goodput",
         "rejected", "failed", "p50", "p99", "shed-by-reason"], rows,
        title=f"open-loop load (seed {args.seed}, scale {args.scale:g}, "
              f"{summary['duration']:g}s)") + "\n")
    goodput_rate = total["goodput_rate"]
    out.write(f"\ntotal: {total['offered']} offered, "
              f"{total['completed']} completed, "
              f"{total['goodput']} within deadline"
              + (f" ({goodput_rate:.1%})" if goodput_rate is not None else "")
              + f", {total['rejected']} shed, {total['failed']} failed\n")
    snap = load_lab.admission.snapshot()
    out.write(f"admission: {snap['inflight']} in flight, "
              f"{snap['queued']} queued after drain, "
              f"service EWMA {snap['service_ewma']:.3f}s\n")
    return 0


#: Sim seconds between history spills while profiling; must stay well
#: inside the health store's retention horizon (120 windows at 1s) so
#: periodic and one-shot spills produce identical databases.
_SPILL_PERIOD = 60.0


def cmd_profile(args, out) -> int:
    from .observability import (
        FlightRecorder,
        HistoryStore,
        metrics_registry,
        profile_run,
    )
    until = args.until
    if until is None:
        until = 21600.0 if args.scenario == "soak" else 30.0
    lab = _lab(args.seed)
    # An explicit profiling run wants the exact two-stamp callback/kernel
    # split; the cheap sampled mode is for always-on recording.
    recorder = FlightRecorder(detail=True)
    store = None
    run_id = args.run_id or f"{args.scenario}-seed{args.seed}"
    if args.spill:
        store = HistoryStore(args.spill)
    try:
        if store is not None:
            store.begin_run(run_id, args.scenario, args.seed,
                            lab.env.scheduler_stats()["kind"], replace=True)
        with profile_run(lab.env, recorder):
            if args.scenario == "six-steps":
                _run_six_steps(lab)
            t = lab.env.now
            while t < until:
                t = min(t + _SPILL_PERIOD, until) if store else until
                lab.env.run(until=t)
                if store is not None:
                    store.spill_windows(run_id, lab.health.store)
        report = recorder.report(registry=metrics_registry(lab.net),
                                 top=args.top)
        if store is not None:
            store.spill_profile(run_id, report)
            store.finish_run(run_id, lab.env.now, recorder.events,
                             meta={"scheduler": lab.env.scheduler_stats()})
    finally:
        # A failed run must not leave the WAL connection (and its lock on
        # the history database) open.
        if store is not None:
            store.close()
    if args.as_json:
        out.write(_canonical_json(report))
        return 0
    _render_profile(out, args, report, run_id if store else None)
    return 0


def _render_profile(out, args, report: dict, spilled_run: Optional[str]) -> None:
    from .metrics import render_table
    out.write(f"flight recorder: {args.scenario} (seed {args.seed}), "
              f"{report['events']} events in {report['wall_s']:.3f}s wall "
              f"({report['events_per_sec']:,.0f} events/s)\n")
    attributed = f"attributed {report['attributed_share']:.1%} of wall time"
    if report["mode"] == "detail":
        attributed += (f" (callbacks {report['callback_share']:.1%}, "
                       f"kernel {report['kernel_share']:.1%})")
    else:
        attributed += f" (sampled, every {report['sample_period']} events)"
    out.write(attributed + "\n\n")
    rows = [[row["event_type"], row["target"], row["count"],
             f"{row['wall_s'] * 1000:.2f}", f"{row['share']:.1%}"]
            for row in report["attribution"]]
    truncated = report.get("truncated")
    if truncated:
        rows.append(["...", f"({truncated['rows']} more)",
                     truncated["count"],
                     f"{truncated['wall_s'] * 1000:.2f}", ""])
    out.write(render_table(
        ["event type", "target", "count", "wall ms", "share"], rows,
        title=f"top {args.top} by wall time") + "\n")
    sched = report["scheduler"]
    out.write(f"\nscheduler[{sched['kind']}]: "
              + " ".join(f"{k}={sched[k]}" for k in sorted(sched)
                         if k != "kind") + "\n")
    services = report.get("services") or {}
    for section in ("providers", "rpc"):
        entries = services.get(section)
        if not entries:
            continue
        out.write(f"\n{section} (sim-side service time):\n")
        for label, stats in entries.items():
            out.write(f"  {label:<24} n={stats['count']:<6} "
                      f"mean={stats['mean']:.4f}s p50={stats['p50']:.4f}s "
                      f"p95={stats['p95']:.4f}s\n")
    if spilled_run:
        out.write(f"\nspilled run {spilled_run!r} to {args.spill}\n")


def cmd_history(args, out) -> int:
    from .metrics import render_table
    from .observability import HistoryStore
    import os
    if not os.path.exists(args.db):
        out.write(f"error: no history database at {args.db}\n")
        return 2
    with HistoryStore(args.db) as store:
        if args.history_command == "list":
            runs = store.runs()
            if args.as_json:
                out.write(_canonical_json(runs))
                return 0
            rows = [[r["run_id"], r["scenario"], str(r["seed"]),
                     r["scheduler"],
                     "-" if r["sim_end"] is None else f"{r['sim_end']:g}",
                     "-" if r["events"] is None else r["events"],
                     "yes" if r["finished"] else "no",
                     "-" if r["restored_from"] is None
                     else r["restored_from"][:12]]
                    for r in runs]
            out.write(render_table(
                ["run", "scenario", "seed", "scheduler", "sim end",
                 "events", "finished", "restored-from"], rows,
                title=f"{len(runs)} recorded run(s) in {args.db}") + "\n")
            return 0
        if store.run(args.run) is None:
            out.write(f"error: no run {args.run!r} in {args.db} "
                      "(see: history list)\n")
            return 2
        if args.history_command == "keys":
            keys = store.keys(args.run, prefix=args.prefix)
            if args.as_json:
                out.write(_canonical_json(keys))
            else:
                for key in keys:
                    out.write(key + "\n")
            return 0
        if args.history_command == "profile":
            rows = store.profile(args.run)
            if args.as_json:
                out.write(_canonical_json(rows))
                return 0
            out.write(render_table(
                ["event type", "target", "count", "wall ms", "share"],
                [[r["event_type"], r["target"], r["count"],
                  f"{r['wall_s'] * 1000:.2f}", f"{r['share']:.1%}"]
                 for r in rows],
                title=f"spilled profile for {args.run}") + "\n")
            return 0
        if args.history_command == "stats":
            stats = store.stats(args.run, args.key,
                                since=args.since, until=args.until)
            if args.as_json:
                out.write(_canonical_json(stats))
                return 0
            if not stats["windows"]:
                out.write(f"{args.key}: no windows in horizon\n")
                return 0
            out.write(f"{args.key} [{args.run}] "
                      f"t={stats['first_t']:g}..{stats['last_t']:g}: "
                      + " ".join(f"{k}={stats[k]:g}" if k != "kind"
                                 else f"kind={stats[k]}"
                                 for k in sorted(stats)
                                 if k not in ("first_t", "last_t"))
                      + "\n")
            return 0
        # series
        windows = store.series(args.run, args.key, since=args.since,
                               until=args.until, limit=args.limit)
        if args.as_json:
            out.write(_canonical_json(windows))
            return 0
        fields = ("value", "delta", "rate", "count", "p50", "p95", "max")
        rows = [[f"{w['t']:g}", w["kind"]]
                + ["-" if w.get(f) is None
                   else (f"{w[f]:g}" if isinstance(w[f], float) else w[f])
                   for f in fields]
                for w in windows]
        out.write(render_table(["t", "kind", *fields], rows,
                               title=f"{args.key} [{args.run}], "
                                     f"{len(windows)} window(s)") + "\n")
        return 0


def _chaos_runner(args):
    from .chaos import CampaignConfig, CampaignRunner
    config = CampaignConfig(horizon=args.horizon, scenario_seed=args.seed)
    return CampaignRunner(scenario=args.scenario, config=config)


def _write_run_line(out, run) -> None:
    verdict = "PASS" if run["ok"] else "FAIL"
    recovery = run["recovery"]
    mttr = (f"{recovery['mttr']:.1f}s" if recovery["mttr"] is not None
            else "-")
    bad = ",".join(result["name"] for result in run["invariants"]
                   if not result["ok"])
    out.write(f"  seed {run['seed']:<4} {verdict}  "
              f"events={len(run['plan']['events'])} "
              f"issued={run['workload']['issued']} "
              f"failed={run['workload']['failed']} "
              f"incidents={recovery['incidents']} mttr={mttr}"
              + (f"  [{bad}]" if bad else "") + "\n")


def cmd_chaos(args, out) -> int:
    from .chaos import ChaosPlan, campaign_json, shrink_failing_seed, verdict_json
    runner = _chaos_runner(args)
    if args.chaos_command == "run":
        seeds = list(range(args.seed_start, args.seed_start + args.seeds))
        summary = runner.run(seeds)
        if args.as_json:
            out.write(campaign_json(summary))
        else:
            out.write(f"chaos campaign: {args.scenario}, "
                      f"{len(seeds)} seed(s), horizon {args.horizon:g}s\n")
            for run in summary["runs"]:
                _write_run_line(out, run)
            mean = (f"{summary['mean_mttr']:.1f}s"
                    if summary["mean_mttr"] is not None else "-")
            out.write(f"passed {summary['passed']}/{len(seeds)}, "
                      f"mean MTTR {mean}\n")
        return 0 if summary["failed"] == 0 else 1
    if args.chaos_command == "shrink":
        result, verdict = shrink_failing_seed(runner, args.chaos_seed,
                                              max_runs=args.max_runs,
                                              warm=args.warm)
        if result is None:
            out.write(f"seed {args.chaos_seed} passes every invariant; "
                      "nothing to shrink\n")
            return 0
        plan_json = result.plan.to_json()
        if args.out:
            from .util.atomicio import atomic_write_text
            atomic_write_text(args.out, plan_json)
        if args.as_json:
            out.write(plan_json)
        else:
            bad = ", ".join(r["name"] for r in verdict["invariants"]
                            if not r["ok"])
            out.write(f"seed {args.chaos_seed} violates: {bad}\n")
            out.write(f"shrunk {len(verdict['plan']['events'])} -> "
                      f"{len(result.plan.events)} event(s) in "
                      f"{result.runs} re-run(s)"
                      + (" (budget exhausted)" if result.exhausted else "")
                      + (f" [probes: {result.mode}]" if args.warm else "")
                      + "\n")
            for event in result.plan.events:
                out.write(f"  {event.kind} {event.target} "
                          f"@{event.start:g}s for {event.duration:g}s"
                          + (f" {event.params}" if event.params else "")
                          + "\n")
            if args.out:
                out.write(f"minimal plan written to {args.out}\n")
        return 1
    # replay
    with open(args.plan, encoding="utf-8") as fh:
        plan = ChaosPlan.from_json(fh.read())
    run = runner.run_plan(plan)
    if args.as_json:
        out.write(verdict_json(run))
    else:
        out.write(f"replaying {len(plan.events)} event(s) from "
                  f"{args.plan}\n")
        _write_run_line(out, run)
    return 0 if run["ok"] else 1


def cmd_snapshot(args, out) -> int:
    from .snapshot.programs import campaign_spec, run_program, status_spec
    if args.program == "status":
        horizon = args.until
        spec = status_spec(seed=args.seed, until=args.until,
                           six_steps=not args.quiet_lab)
    else:
        from .chaos import CampaignConfig, CampaignRunner
        horizon = args.horizon
        config = CampaignConfig(horizon=args.horizon,
                                scenario_seed=args.seed)
        runner = CampaignRunner(scenario=args.scenario, config=config)
        spec = campaign_spec(runner.plan_for(args.chaos_seed).to_dict(),
                             scenario=args.scenario)
    if not 0 <= args.at < horizon:
        out.write(f"error: --at {args.at:g} is outside the run's horizon "
                  f"[0, {horizon:g}); the checkpoint would never fire\n")
        return 2
    run_program(spec, checkpoint_at=[args.at], sink=args.out)
    from .snapshot.format import read_snapshot
    body = read_snapshot(args.out)
    out.write(f"snapshot written to {args.out}: {args.program} program, "
              f"checkpoint at t={body['checkpoint']['at']:g}s, "
              f"{len(body['state'])} state section(s), "
              f"digest {body['digest'][:12]}\n")
    return 0


def cmd_restore(args, out) -> int:
    from .snapshot import (RestoreMismatch, SnapshotCorrupt,
                           SnapshotVersionError)
    from .snapshot.restore import restore_run
    try:
        outputs, body = restore_run(args.snapshot,
                                    continue_run=not args.verify_only)
    except FileNotFoundError:
        out.write(f"error: no snapshot at {args.snapshot}\n")
        return 2
    except (SnapshotCorrupt, SnapshotVersionError, RestoreMismatch) as exc:
        out.write(f"error: {type(exc).__name__}: {exc}\n")
        return 2
    checkpoint = body["checkpoint"]
    program = body["program"]
    if outputs is None:
        out.write(f"snapshot verified: {program['kind']} program, replayed "
                  f"state matches checkpoint {checkpoint['index']} at "
                  f"t={checkpoint['at']:g}s (digest {body['digest'][:12]})\n")
        return 0
    if args.spill:
        from .observability import HistoryStore
        run_id = args.run_id or f"restore-{program['kind']}"
        kernel = body["state"]["kernel"]
        with HistoryStore(args.spill) as store:
            store.begin_run(
                run_id, program.get("scenario", "paper-lab"),
                program.get("seed", program.get("plan", {}).get("seed", 0)),
                program.get("scheduler") or "heap", replace=True,
                restored_from=body["digest"])
            store.finish_run(run_id, checkpoint["at"],
                             kernel["seqs_issued"],
                             meta={"snapshot": args.snapshot})
    if args.as_json:
        out.write(outputs["verdict"] if "verdict" in outputs
                  else outputs["status"])
        return 0
    out.write(f"restored {program['kind']} run from {args.snapshot}: "
              f"checkpoint {checkpoint['index']} at t={checkpoint['at']:g}s "
              f"verified (digest {body['digest'][:12]}), continued to "
              f"completion\n")
    for name in sorted(outputs):
        out.write(f"  output {name}: {len(outputs[name])} bytes\n")
    if args.spill:
        out.write(f"recorded resumed run in {args.spill}\n")
    return 0


def cmd_lint(args, out) -> int:
    from .analysis import (RULES, all_rules, apply_baseline, format_baseline,
                           lint_paths, load_baseline, render_findings,
                           render_json, render_sarif)
    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.rule_id}  {rule.summary}\n")
        return 0
    if args.as_json and args.sarif:
        out.write("error: --json and --sarif are mutually exclusive\n")
        return 2
    rules = None
    if args.rule_ids:
        selected = []
        unknown = []
        for token in args.rule_ids:
            if token in RULES:
                selected.append(RULES[token])
                continue
            family = [rule for rule_id, rule in sorted(RULES.items())
                      if rule_id.startswith(token)]
            if family and token.isalpha():
                selected.extend(family)
            else:
                unknown.append(token)
        if unknown:
            out.write(f"unknown rule(s): {', '.join(unknown)}; "
                      f"known: {', '.join(sorted(RULES))}\n")
            return 2
        rules = selected
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        out.write(f"error: {exc}\n")
        return 2
    if args.baseline:
        try:
            text = Path(args.baseline).read_text(encoding="utf-8")
        except OSError as exc:
            out.write(f"error: cannot read baseline: {exc}\n")
            return 2
        findings = apply_baseline(findings, load_baseline(text))
    if args.write_baseline:
        from .util.atomicio import atomic_write_text
        atomic_write_text(args.write_baseline, format_baseline(findings))
        out.write(f"wrote {len(findings)} finding(s) to "
                  f"{args.write_baseline}\n")
        return 0
    if args.as_json:
        out.write(render_json(findings))
    elif args.sarif:
        out.write(render_sarif(findings))
    else:
        out.write(render_findings(findings) + "\n")
    return 1 if findings else 0


_COMMANDS = {
    "inventory": cmd_inventory,
    "experiment": cmd_experiment,
    "value": cmd_value,
    "farm": cmd_farm,
    "topology": cmd_topology,
    "traffic": cmd_traffic,
    "watch": cmd_watch,
    "admin": cmd_admin,
    "trace": cmd_trace,
    "status": cmd_status,
    "health": cmd_health,
    "load": cmd_load,
    "profile": cmd_profile,
    "history": cmd_history,
    "chaos": cmd_chaos,
    "snapshot": cmd_snapshot,
    "restore": cmd_restore,
    "lint": cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
