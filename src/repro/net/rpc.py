"""Remote method invocation over the simulated network.

Models Jini-ERI style invocation: a client holds a :class:`RemoteRef` (the
"proxy") naming a host and an exported object id; a call is a request
message, server-side execution (which may itself be a simulated process that
sleeps, computes and makes further remote calls) and a reply message.

Every host gets one lazily created :class:`RpcEndpoint` (see
:func:`rpc_endpoint`) which serves both roles: it exports local objects and
issues outbound calls. Calls return kernel events, so caller code reads::

    value = yield endpoint.call(ref, "getValue", path)

Failure semantics match the real thing: lost requests or replies surface as
:class:`RpcTimeout`; a server-side exception surfaces as
:class:`RemoteError` wrapping the cause.
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from itertools import count
from typing import Any, Iterable, Optional

from ..observability.registry import metrics_registry
from ..observability.span import NULL_SPAN
from ..observability.tracer import tracer_of
from ..sim import Event, Interrupt
from ..sim import sanitizer as _san
from .errors import NoSuchObjectError, RemoteError, RpcTimeout
from .host import Host
from .message import Message
from .wire import Protocol, WireSized

__all__ = ["RemoteRef", "RpcEndpoint", "rpc_endpoint"]

REQUEST_PORT = "rpc.req"
REPLY_PORT = "rpc.rep"
DEFAULT_TIMEOUT = 5.0


@dataclass(frozen=True)
class RemoteRef(WireSized):
    """A serializable handle to an object exported on some host.

    ``type_names`` lists the remote interfaces the object claims to
    implement; lookup-service template matching uses them.
    """

    host: str
    object_id: str
    type_names: tuple = ()

    def wire_size(self) -> int:
        return 48 + len(self.host) + sum(len(t) for t in self.type_names)

    def implements(self, type_name: str) -> bool:
        return type_name in self.type_names


def _remote_type_names(obj: Any) -> tuple:
    """Collect declared remote interface names from the object's MRO.

    A class opts into a remote type by listing names in ``REMOTE_TYPES``;
    an instance may extend the set with its own ``REMOTE_TYPES`` attribute
    (service providers compute their types at construction time); otherwise
    the class name itself is used.
    """
    names: list[str] = []
    instance_types = vars(obj).get("REMOTE_TYPES") if hasattr(obj, "__dict__") else None
    if instance_types:
        names.extend(instance_types)
    for klass in type(obj).__mro__:
        declared = klass.__dict__.get("REMOTE_TYPES")
        if declared:
            for name in declared:
                if name not in names:
                    names.append(name)
    if not names:
        names.append(type(obj).__name__)
    return tuple(names)


class _PendingCall:
    __slots__ = ("event", "started_at", "timer", "span")

    def __init__(self, event: Event, started_at: float, timer: Event,
                 span=NULL_SPAN):
        self.event = event
        self.started_at = started_at
        self.timer = timer
        self.span = span


class RpcEndpoint:
    """Per-host RPC stack (server + client)."""

    def __init__(self, host: Host):
        self.host = host
        self.env = host.env
        self._objects: dict[str, Any] = {}
        self._allowed: dict[str, Optional[frozenset]] = {}
        self._pending: dict[int, _PendingCall] = {}
        self._request_ids = count(1)
        # Duplicate-request suppression: the network may deliver a request
        # twice (chaos duplication models at-least-once links). Request ids
        # are per-caller counters, so the dedup key includes the caller.
        # Bounded window — old entries age out; callers never reuse ids.
        self._seen_requests: set = set()
        self._seen_order: deque = deque()
        self._seen_limit = 4096
        self._tracer = tracer_of(host.network)
        registry = metrics_registry(host.network)
        self._m_calls = registry.counter("rpc.calls", host=host.name)
        self._m_timeouts = registry.counter("rpc.timeouts", host=host.name)
        self._m_rtt = registry.histogram("rpc.rtt", host=host.name)
        host.open_port(REQUEST_PORT, self._on_request)
        host.open_port(REPLY_PORT, self._on_reply)
        host.on_fail(self._on_host_fail)

    # -- server side ----------------------------------------------------------

    def export(self, obj: Any, object_id: str,
               methods: Optional[Iterable[str]] = None) -> RemoteRef:
        """Export ``obj`` under ``object_id``; returns the proxy to hand out.

        ``methods`` restricts callable selectors; ``None`` allows any public
        method (name not starting with underscore).
        """
        if object_id in self._objects:
            raise ValueError(f"object id {object_id!r} already exported on {self.host.name}")
        if _san._active is not None:
            _san._active.record(("rpc-exports", self.host.name), "w",
                                f"RPC export table of host {self.host.name!r}")
        self._objects[object_id] = obj
        self._allowed[object_id] = frozenset(methods) if methods is not None else None
        return RemoteRef(host=self.host.name, object_id=object_id,
                         type_names=_remote_type_names(obj))

    def unexport(self, object_id: str) -> None:
        if _san._active is not None:
            _san._active.record(("rpc-exports", self.host.name), "w",
                                f"RPC export table of host {self.host.name!r}")
        self._objects.pop(object_id, None)
        self._allowed.pop(object_id, None)

    def is_exported(self, object_id: str) -> bool:
        return object_id in self._objects

    def _on_request(self, msg: Message) -> None:
        request_id, reply_to, object_id, method, args, kwargs = msg.payload
        dedup_key = (reply_to, request_id)
        if dedup_key in self._seen_requests:
            return  # duplicate delivery: execute-at-most-once per request
        self._seen_requests.add(dedup_key)
        self._seen_order.append(dedup_key)
        if len(self._seen_order) > self._seen_limit:
            self._seen_requests.discard(self._seen_order.popleft())
        if _san._active is not None:
            _san._active.record(("rpc-exports", self.host.name), "r",
                                f"RPC export table of host {self.host.name!r}")
        obj = self._objects.get(object_id)
        if obj is None:
            self._reply(reply_to, request_id, False,
                        NoSuchObjectError(f"{object_id!r} not exported on {self.host.name}"))
            return
        allowed = self._allowed.get(object_id)
        if (method.startswith("_")
                or (allowed is not None and method not in allowed)):
            self._reply(reply_to, request_id, False,
                        NoSuchObjectError(f"method {method!r} not remotely invocable"))
            return
        target = getattr(obj, method, None)
        if target is None or not callable(target):
            self._reply(reply_to, request_id, False,
                        NoSuchObjectError(f"{type(obj).__name__} has no method {method!r}"))
            return
        self.env.process(self._invoke(reply_to, request_id, target, args, kwargs),
                         name=f"rpc:{self.host.name}.{method}")

    def _invoke(self, reply_to: str, request_id: int, target, args, kwargs):
        try:
            result = target(*args, **kwargs)
            if inspect.isgenerator(result):
                result = yield self.env.process(result)
        except Interrupt:
            # An interrupt aims at this server process, not at the remote
            # caller — propagate it instead of shipping it as a reply.
            raise
        except BaseException as exc:  # noqa: BLE001 - crosses the RPC boundary
            self._reply(reply_to, request_id, False, exc)
            return
        self._reply(reply_to, request_id, True, result)
        return
        yield  # pragma: no cover  # repro: allow[SIM002] - makes this a generator

    def _reply(self, reply_to: str, request_id: int, ok: bool, value: Any) -> None:
        if not self.host.up:
            return
        self.host.send(reply_to, REPLY_PORT, kind="rpc-reply",
                       payload=(request_id, ok, value), protocol=Protocol.JERI)

    # -- client side ----------------------------------------------------------

    def call(self, ref: RemoteRef, method: str, *args,
             timeout: float = DEFAULT_TIMEOUT, kind: str = "rpc-request",
             trace_parent: Optional[int] = None, **kwargs) -> Event:
        """Invoke ``method`` on the remote object; returns an event that
        triggers with the result, or fails with :class:`RpcTimeout` /
        :class:`RemoteError`.

        ``trace_parent`` links the call's client-side span (request sent →
        reply received / timed out) under the caller's span; it is consumed
        here, never forwarded to the remote method. Calls with *no* parent
        are infrastructure chatter (registration, lease renewal, lookup
        polling) rather than exertion hops: they are counted in the
        ``rpc.calls`` metrics but not traced, which keeps traces focused on
        federated requests and bounds span growth in long runs.
        """
        event = self.env.event()
        request_id = next(self._request_ids)
        self._m_calls.inc()
        if trace_parent is not None:
            span = self._tracer.start_span(f"rpc:{method}", kind="rpc",
                                           host=self.host.name,
                                           parent_id=trace_parent,
                                           peer=ref.host, msg_kind=kind)
        else:
            span = NULL_SPAN
        # The watchdog is a bare Timeout with a callback — not a process.
        # A process per call would stay alive until the full timeout even
        # after the reply arrives (generator + pending-event bookkeeping per
        # in-flight *and completed* call), which bloats the event queue in
        # large-grid runs. The callback is neutralized on reply instead.
        timer = self.env.timeout(timeout)
        self._pending[request_id] = _PendingCall(event, self.env.now, timer,
                                                 span)
        payload = (request_id, self.host.name, ref.object_id, method, args, kwargs)
        try:
            self.host.send(ref.host, REQUEST_PORT, kind=kind,
                           payload=payload, protocol=Protocol.JERI)
        except Exception as exc:
            self._pending.pop(request_id, None)
            timer.callbacks.clear()
            span.end("send_failed")
            event.fail(exc)
            return event
        timer.callbacks.append(lambda _ev: self._expire(request_id, timeout))
        return event

    def _expire(self, request_id: int, timeout: float) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is not None and not pending.event.triggered:
            self._m_timeouts.inc()
            pending.span.end("timeout")
            pending.event.fail(RpcTimeout(
                f"no reply for request {request_id} within {timeout}s"))

    def _on_reply(self, msg: Message) -> None:
        request_id, ok, value = msg.payload
        pending = self._pending.pop(request_id, None)
        if pending is None or pending.event.triggered:
            return  # reply after timeout: drop, like a closed socket
        # Neutralize the watchdog: its heap slot stays (removal from a
        # binary heap is O(n)) but the callback and its closure are dropped.
        if pending.timer.callbacks is not None:
            pending.timer.callbacks.clear()
        self._m_rtt.observe(self.env.now - pending.started_at)
        pending.span.end("ok" if ok else "remote_error")
        if ok:
            pending.event.succeed(value)
        else:
            if isinstance(value, NoSuchObjectError):
                pending.event.fail(value)
            else:
                pending.event.fail(RemoteError(value))

    # -- lifecycle --------------------------------------------------------------

    def _on_host_fail(self, host: Host) -> None:
        # In-flight outbound calls will time out on their own; exported
        # objects stay registered so a recovered host resumes serving
        # (mirrors a process restart reusing persisted export state is NOT
        # modelled — Jini re-join handles re-registration at a higher layer).
        pass


def rpc_endpoint(host: Host) -> RpcEndpoint:
    """Return the host's RPC endpoint, creating it on first use."""
    endpoint = getattr(host, "_rpc_endpoint", None)
    if endpoint is None:
        endpoint = RpcEndpoint(host)
        host._rpc_endpoint = endpoint
    return endpoint
