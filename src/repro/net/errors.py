"""Network- and RPC-level exceptions.

These model *distributed-system* failures (the kind Jini programming makes
explicit) rather than programming errors: a call can time out, the remote
object can be gone, or the remote method can raise.
"""

from __future__ import annotations

__all__ = [
    "NetworkError",
    "HostDownError",
    "NoSuchObjectError",
    "NoSuchPortError",
    "RemoteError",
    "RpcTimeout",
    "UnreachableError",
]


class NetworkError(Exception):
    """Base class for all modelled network failures."""


class HostDownError(NetworkError):
    """An operation was attempted from or on a crashed host."""


class UnreachableError(NetworkError):
    """Destination is unreachable (partition or unknown host)."""


class NoSuchPortError(NetworkError):
    """Message arrived for a port nobody listens on."""


class NoSuchObjectError(NetworkError):
    """RPC addressed an object id not exported on the target host."""


class RpcTimeout(NetworkError):
    """No reply arrived within the call's timeout."""


class RemoteError(NetworkError):
    """The remote method raised; wraps the original exception.

    Mirrors Jini/RMI semantics: the caller sees a single remote-failure
    type carrying the server-side cause.
    """

    def __init__(self, cause: BaseException):
        super().__init__(f"remote invocation failed: {cause!r}")
        self.cause = cause
