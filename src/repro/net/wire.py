"""Wire-size estimation and protocol overhead accounting.

The paper's motivation §II.1 argues that per-sensor IP traffic has a large
header overhead relative to tiny sensor readings. To *measure* that claim
(experiment E-OVH) every simulated message carries an estimated serialized
payload size plus a protocol-dependent header size. Sizes are estimates of
what a reasonable binary serialization would produce — they only need to be
consistent across the compared systems, not byte-exact.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any

__all__ = ["Protocol", "estimate_size", "header_size", "WireSized"]


class Protocol(Enum):
    """Transport used by a message, determining per-packet header cost.

    Header sizes (bytes):

    * ``UDP``  — IPv4 (20) + UDP (8) = 28; used for discovery multicast.
    * ``TCP``  — IPv4 (20) + TCP (20) per segment, plus a notional 12-byte
      session framing = 52; used for plain point-to-point data (the
      direct-polling baseline).
    * ``JERI`` — TCP plus Jini-ERI method-invocation framing (method hash,
      object id, integrity metadata); we charge 52 + 96 = 148. All SORCER
      federated method invocations ride on this.
    """

    UDP = "udp"
    TCP = "tcp"
    JERI = "jeri"


_HEADER_BYTES = {
    Protocol.UDP: 28,
    Protocol.TCP: 52,
    Protocol.JERI: 148,
}


def header_size(protocol: Protocol) -> int:
    return _HEADER_BYTES[protocol]


class WireSized:
    """Mixin for objects that know their own serialized size."""

    __slots__ = ()

    def wire_size(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


#: Per-element structural overhead (type tag + length) for containers.
_ITEM_OVERHEAD = 4
#: Class descriptor overhead charged once per object instance.
_OBJECT_OVERHEAD = 16


def estimate_size(obj: Any) -> int:
    """Estimate the serialized size of ``obj`` in bytes.

    Handles the payload vocabulary used throughout the framework: scalars,
    strings, containers, dataclasses and :class:`WireSized` objects. Unknown
    objects are charged a flat descriptor cost plus their ``__dict__``.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return _ITEM_OVERHEAD + len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray)):
        return _ITEM_OVERHEAD + len(obj)
    if isinstance(obj, WireSized):
        return obj.wire_size()
    if isinstance(obj, Enum):
        return _ITEM_OVERHEAD + len(str(obj.value))
    if isinstance(obj, dict):
        return _ITEM_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) + _ITEM_OVERHEAD
            for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _ITEM_OVERHEAD + sum(
            estimate_size(item) + _ITEM_OVERHEAD for item in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _OBJECT_OVERHEAD + sum(
            estimate_size(getattr(obj, f.name))
            for f in dataclasses.fields(obj))
    if hasattr(obj, "__dict__"):
        return _OBJECT_OVERHEAD + estimate_size(vars(obj))
    return _OBJECT_OVERHEAD
