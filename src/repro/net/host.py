"""A simulated host: a named machine with ports, crash/recovery semantics and
failure listeners.

Hosts are where service providers, lookup services and cybernodes live. A
crashed host drops all inbound messages and cannot send; components hosted on
it learn about the crash through :meth:`Host.on_fail` callbacks (the way a
JVM's death takes its services with it)."""

from __future__ import annotations

from typing import Any, Callable

from ..sim import Environment
from .errors import HostDownError
from .message import Message
from .network import Network
from .wire import Protocol

__all__ = ["Host"]

#: Port handlers receive the delivered message.
PortHandler = Callable[[Message], None]


class Host:
    """A machine attached to the simulated network."""

    def __init__(self, network: Network, name: str):
        self.network = network
        self.name = name
        self.env: Environment = network.env
        self.up = True
        self._ports: dict[str, PortHandler] = {}
        self._fail_listeners: list[Callable[["Host"], None]] = []
        self._recover_listeners: list[Callable[["Host"], None]] = []
        network.attach(self)

    # -- ports ------------------------------------------------------------

    def open_port(self, port: str, handler: PortHandler) -> None:
        if port in self._ports:
            raise ValueError(f"port {port!r} already open on {self.name}")
        self._ports[port] = handler

    def close_port(self, port: str) -> None:
        self._ports.pop(port, None)

    def has_port(self, port: str) -> bool:
        return port in self._ports

    # -- sending -------------------------------------------------------------

    def send(self, dst: str, port: str, kind: str, payload: Any = None,
             protocol: Protocol = Protocol.TCP) -> None:
        """Fire-and-forget unicast."""
        self.network.send(Message(src=self.name, dst=dst, port=port,
                                  kind=kind, payload=payload, protocol=protocol))

    def multicast(self, group: str, port: str, kind: str, payload: Any = None) -> int:
        """Fire-and-forget multicast (UDP semantics)."""
        if not self.up:
            raise HostDownError(f"{self.name} is down")
        template = Message(src=self.name, dst="*", port=port, kind=kind,
                           payload=payload, protocol=Protocol.UDP)
        return self.network.multicast(group, template)

    def join_group(self, group: str) -> None:
        self.network.join_group(group, self.name)

    def leave_group(self, group: str) -> None:
        self.network.leave_group(group, self.name)

    # -- receiving --------------------------------------------------------------

    def _receive(self, msg: Message) -> None:
        if not self.up:
            return
        handler = self._ports.get(msg.port)
        if handler is None:
            # Silently dropped, like a closed UDP port / refused TCP connect.
            self.network.stats.dropped += 1
            return
        handler(msg)

    # -- lifecycle ----------------------------------------------------------------

    def on_fail(self, listener: Callable[["Host"], None]) -> None:
        """Register a callback invoked when this host crashes."""
        self._fail_listeners.append(listener)

    def on_recover(self, listener: Callable[["Host"], None]) -> None:
        self._recover_listeners.append(listener)

    def fail(self) -> None:
        """Crash the host: ports keep their handlers but nothing is delivered
        or sent until :meth:`recover`."""
        if not self.up:
            return
        self.up = False
        for listener in list(self._fail_listeners):
            listener(self)

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        for listener in list(self._recover_listeners):
            listener(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name} {'up' if self.up else 'DOWN'}>"
