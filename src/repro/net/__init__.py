"""Simulated network substrate: hosts, links, multicast, partitions, RPC.

Note on fidelity: message payloads are passed by reference (no pickling) as
a simulation shortcut; layers where serialization isolation matters (the
SORCER exertion boundary) copy explicitly. Sizes and latencies *are*
modelled, so traffic accounting is meaningful.
"""

from .errors import (
    HostDownError,
    NetworkError,
    NoSuchObjectError,
    NoSuchPortError,
    RemoteError,
    RpcTimeout,
    UnreachableError,
)
from .host import Host
from .latency import BernoulliLoss, FixedLatency, LanLatency, NoLoss
from .message import Message
from .network import Network, TrafficStats
from .rpc import RemoteRef, RpcEndpoint, rpc_endpoint
from .wire import Protocol, estimate_size, header_size

__all__ = [
    "BernoulliLoss",
    "FixedLatency",
    "Host",
    "HostDownError",
    "LanLatency",
    "Message",
    "Network",
    "NetworkError",
    "NoLoss",
    "NoSuchObjectError",
    "NoSuchPortError",
    "Protocol",
    "RemoteError",
    "RemoteRef",
    "RpcEndpoint",
    "RpcTimeout",
    "TrafficStats",
    "UnreachableError",
    "estimate_size",
    "header_size",
    "rpc_endpoint",
]
