"""Link latency and loss models.

The default models a switched lab LAN (the paper's SORCER Lab deployment):
sub-millisecond base latency, 100 Mbit/s serialization delay, small jitter.
All randomness comes from a caller-supplied :class:`numpy.random.Generator`
so runs are reproducible.
"""

from __future__ import annotations


import numpy as np

__all__ = ["LatencyModel", "LanLatency", "FixedLatency", "LossModel",
           "NoLoss", "BernoulliLoss"]


class LatencyModel:
    """Computes the one-way delay for a message."""

    def delay(self, src: str, dst: str, size_bytes: int) -> float:  # pragma: no cover
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant delay regardless of endpoints and size (useful in tests)."""

    def __init__(self, seconds: float):
        self.seconds = float(seconds)

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        return self.seconds


class LanLatency(LatencyModel):
    """Base propagation + serialization + lognormal-ish jitter.

    ``delay = base + size/bandwidth + jitter`` where jitter is drawn from an
    exponential distribution with mean ``jitter_mean`` (heavy-ish tail, like
    switch queueing).
    """

    def __init__(self, rng: np.random.Generator,
                 base: float = 0.0005,
                 bandwidth_bps: float = 100e6,
                 jitter_mean: float = 0.0002):
        self.rng = rng
        self.base = base
        self.bandwidth_bps = bandwidth_bps
        self.jitter_mean = jitter_mean

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        serialization = size_bytes * 8.0 / self.bandwidth_bps
        jitter = float(self.rng.exponential(self.jitter_mean)) if self.jitter_mean > 0 else 0.0
        return self.base + serialization + jitter


class LossModel:
    """Decides whether a message is dropped in flight."""

    def dropped(self, src: str, dst: str, size_bytes: int) -> bool:  # pragma: no cover
        raise NotImplementedError


class NoLoss(LossModel):
    def dropped(self, src: str, dst: str, size_bytes: int) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent drop probability per message."""

    def __init__(self, rng: np.random.Generator, probability: float):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        self.rng = rng
        self.probability = probability

    def dropped(self, src: str, dst: str, size_bytes: int) -> bool:
        return bool(self.rng.random() < self.probability)
