"""The simulated network: hosts, unicast/multicast delivery, partitions and
traffic accounting.

Replaces the physical LAN of the paper's SORCER Lab deployment. Delivery is
asynchronous: :meth:`Network.send` schedules the message for the destination
after the latency model's delay; loss and partitions silently drop messages
(exactly what a requestor on a real network would observe — hence Jini's
leases and timeouts on top).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..sim import Environment
from ..snapshot.registry import register_participant
from ..util.ids import IdSource
from .errors import HostDownError, UnreachableError
from .latency import LanLatency, LatencyModel, LossModel, NoLoss
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .host import Host

__all__ = ["Network", "TrafficStats", "LinkDecision"]


@dataclass(frozen=True)
class LinkDecision:
    """Verdict of a link filter about one in-flight message.

    ``drop`` suppresses delivery (counted in :attr:`TrafficStats.dropped`);
    ``extra_delay`` is added to the latency model's draw (reordering falls
    out of unequal extra delays); ``copies`` schedules duplicate deliveries,
    one per entry, each offset from the (delayed) base delivery time.
    """

    drop: bool = False
    extra_delay: float = 0.0
    copies: tuple = ()


@dataclass
class TrafficStats:
    """Cumulative traffic counters, overall and per message ``kind``."""

    messages: int = 0
    payload_bytes: int = 0
    header_bytes: int = 0
    dropped: int = 0
    by_kind: dict = field(default_factory=lambda: defaultdict(
        lambda: {"messages": 0, "payload_bytes": 0, "header_bytes": 0}))
    #: Per-host link accounting: host -> {"sent": bytes, "received": bytes,
    #: "sent_messages": n, "received_messages": n}. "received" counts bytes
    #: addressed to the host (its ingress link carries them even if the
    #: host later drops them).
    by_host: dict = field(default_factory=lambda: defaultdict(
        lambda: {"sent": 0, "received": 0,
                 "sent_messages": 0, "received_messages": 0}))

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.payload_bytes += msg.payload_bytes
        self.header_bytes += msg.header_bytes
        slot = self.by_kind[msg.kind]
        slot["messages"] += 1
        slot["payload_bytes"] += msg.payload_bytes
        slot["header_bytes"] += msg.header_bytes
        total = msg.total_bytes
        sender = self.by_host[msg.src]
        sender["sent"] += total
        sender["sent_messages"] += 1
        receiver = self.by_host[msg.dst]
        receiver["received"] += total
        receiver["received_messages"] += 1

    def host_bytes(self, host: str) -> dict:
        return dict(self.by_host[host])

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "payload_bytes": self.payload_bytes,
            "header_bytes": self.header_bytes,
            "total_bytes": self.total_bytes,
            "dropped": self.dropped,
            "by_kind": {k: dict(v) for k, v in self.by_kind.items()},
        }


class Network:
    """Connects :class:`~repro.net.host.Host` instances.

    Parameters
    ----------
    env:
        The simulation environment.
    rng:
        Source of randomness for default latency model.
    latency, loss:
        Pluggable models; defaults are a lab LAN with no loss.
    """

    def __init__(self, env: Environment,
                 rng: Optional[np.random.Generator] = None,
                 latency: Optional[LatencyModel] = None,
                 loss: Optional[LossModel] = None):
        self.env = env
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.latency = latency if latency is not None else LanLatency(self.rng)
        self.loss = loss if loss is not None else NoLoss()
        self.ids = IdSource(np.random.default_rng(self.rng.integers(2**32)))
        self.hosts: dict[str, "Host"] = {}
        self.groups: dict[str, set[str]] = defaultdict(set)
        #: Unordered host-name pairs that cannot currently talk.
        self._cut_links: set[frozenset] = set()
        #: Ordered (src, dst) pairs cut in one direction only — asymmetric
        #: partitions (e.g. A hears B but B no longer hears A).
        self._cut_directed: set[tuple] = set()
        self.stats = TrafficStats()
        #: Instrumentation taps: callables invoked with every sent message
        #: (after sizes are finalized, before loss/partition decisions).
        self._taps: list = []
        #: Link filters: chaos-injection hooks consulted per message after
        #: the loss model; each returns ``None`` or a :class:`LinkDecision`.
        self._link_filters: list = []
        register_participant(env, "net", self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: topology, partitions, traffic, RNG positions."""
        return {
            "cut_directed": sorted(list(pair) for pair in self._cut_directed),
            "cut_links": sorted(sorted(pair) for pair in self._cut_links),
            "groups": {name: sorted(members)
                       for name, members in sorted(self.groups.items())},
            "hosts": {name: {"up": host.up}
                      for name, host in sorted(self.hosts.items())},
            "ids_issued": self.ids.issued,
            "rng": self.rng.bit_generator.state,
            "traffic": self.stats.snapshot(),
        }

    def tap(self, fn) -> None:
        """Register a message observer (benchmark instrumentation)."""
        self._taps.append(fn)

    def untap(self, fn) -> None:
        try:
            self._taps.remove(fn)
        except ValueError:
            pass

    def add_link_filter(self, fn) -> None:
        """Register a chaos link filter: ``fn(msg) -> LinkDecision | None``.

        Filters see every message that passed the sender/partition/loss
        checks and may drop, delay or duplicate it. Duplicates do not pass
        back through the filters (no recursive chaos)."""
        self._link_filters.append(fn)

    def remove_link_filter(self, fn) -> None:
        try:
            self._link_filters.remove(fn)
        except ValueError:
            pass

    # -- membership ---------------------------------------------------------

    def attach(self, host: "Host") -> None:
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host

    def host(self, name: str) -> "Host":
        return self.hosts[name]

    # -- multicast groups -----------------------------------------------------

    def join_group(self, group: str, host_name: str) -> None:
        self.groups[group].add(host_name)

    def leave_group(self, group: str, host_name: str) -> None:
        self.groups[group].discard(host_name)

    def group_members(self, group: str) -> set[str]:
        return set(self.groups.get(group, ()))

    # -- partitions -----------------------------------------------------------

    def cut_link(self, a: str, b: str) -> None:
        """Make ``a`` and ``b`` mutually unreachable until healed."""
        self._cut_links.add(frozenset((a, b)))

    def heal_link(self, a: str, b: str) -> None:
        self._cut_links.discard(frozenset((a, b)))

    def partition(self, side_a: list[str], side_b: list[str]) -> None:
        for a in side_a:
            for b in side_b:
                self.cut_link(a, b)

    def heal_partition(self, side_a: list[str], side_b: list[str]) -> None:
        for a in side_a:
            for b in side_b:
                self.heal_link(a, b)

    def cut_link_directed(self, src: str, dst: str) -> None:
        """Cut only the ``src`` → ``dst`` direction (asymmetric partition):
        ``dst`` can still reach ``src``."""
        self._cut_directed.add((src, dst))

    def heal_link_directed(self, src: str, dst: str) -> None:
        self._cut_directed.discard((src, dst))

    def reachable(self, src: str, dst: str) -> bool:
        return (frozenset((src, dst)) not in self._cut_links
                and (src, dst) not in self._cut_directed)

    # -- delivery ---------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Send ``msg`` asynchronously. Never blocks; never reports failure.

        Raises :class:`HostDownError` only if the *sender* is down (a crashed
        host cannot transmit) and :class:`UnreachableError` for an unknown
        destination name — both are programming-model errors, not in-flight
        losses.
        """
        sender = self.hosts.get(msg.src)
        if sender is None or not sender.up:
            raise HostDownError(f"sender {msg.src!r} is down or unknown")
        if msg.dst not in self.hosts:
            raise UnreachableError(f"unknown destination {msg.dst!r}")
        msg.finalize_sizes()
        msg.sent_at = self.env.now
        self.stats.record(msg)
        for tap in self._taps:
            tap(msg)
        if not self.reachable(msg.src, msg.dst):
            self.stats.dropped += 1
            return
        if self.loss.dropped(msg.src, msg.dst, msg.total_bytes):
            self.stats.dropped += 1
            return
        extra_delay = 0.0
        copies: list = []
        for flt in self._link_filters:
            decision = flt(msg)
            if decision is None:
                continue
            if decision.drop:
                self.stats.dropped += 1
                return
            extra_delay += decision.extra_delay
            copies.extend(decision.copies)
        delay = self.latency.delay(msg.src, msg.dst, msg.total_bytes) + extra_delay
        self.env.process(self._deliver(msg, delay), name=f"deliver:{msg.kind}")
        for stagger in copies:
            dup = Message(
                src=msg.src, dst=msg.dst, port=msg.port, kind=msg.kind,
                payload=msg.payload, protocol=msg.protocol,
                payload_bytes=msg.payload_bytes,
                header_bytes=msg.header_bytes, sized=True)
            dup.sent_at = msg.sent_at
            self.stats.record(dup)
            self.env.process(self._deliver(dup, delay + stagger),
                             name=f"deliver-dup:{msg.kind}")

    def multicast(self, group: str, msg_template: Message) -> int:
        """Deliver a copy of the message to every group member except the
        sender. Returns the number of copies sent."""
        count = 0
        msg_template.finalize_sizes()  # size the identical payload once
        for member in sorted(self.groups.get(group, ())):
            if member == msg_template.src:
                continue
            copy = Message(
                src=msg_template.src, dst=member, port=msg_template.port,
                kind=msg_template.kind, payload=msg_template.payload,
                protocol=msg_template.protocol,
                payload_bytes=msg_template.payload_bytes,
                header_bytes=msg_template.header_bytes, sized=True)
            self.send(copy)
            count += 1
        return count

    def _deliver(self, msg: Message, delay: float):
        yield self.env.timeout(delay)
        host = self.hosts.get(msg.dst)
        if host is None or not host.up:
            self.stats.dropped += 1
            return
        host._receive(msg)
