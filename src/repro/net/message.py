"""Message envelope carried by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .wire import Protocol, estimate_size, header_size

__all__ = ["Message", "MTU_PAYLOAD"]

#: Bytes of payload per segment before another header is charged (an
#: Ethernet-ish MTU minus transport headers). Large payloads — exertions,
#: history replies — pay one header per segment, like real TCP streams.
MTU_PAYLOAD = 1460


@dataclass
class Message:
    """A single datagram/segment between two simulated hosts.

    ``kind`` is a free-form category label ("rpc-request", "discovery-probe",
    "sensor-report", …) used by the per-category traffic accounting that the
    overhead benchmark (E-OVH) reports on.
    """

    src: str
    dst: str
    port: str
    kind: str
    payload: Any = None
    protocol: Protocol = Protocol.TCP
    #: Filled in by the network at send time.
    payload_bytes: int = field(default=0)
    header_bytes: int = field(default=0)
    sent_at: float = field(default=0.0)
    #: True once sizes are computed (multicast copies share the template's
    #: sizes instead of re-estimating an identical payload per receiver).
    sized: bool = field(default=False)

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes

    @property
    def segments(self) -> int:
        return max(1, -(-self.payload_bytes // MTU_PAYLOAD))

    def finalize_sizes(self) -> None:
        """Compute and cache payload/header sizes (headers per segment)."""
        if self.sized:
            return
        self.payload_bytes = estimate_size(self.payload)
        per_segment = header_size(self.protocol)
        self.header_bytes = per_segment * self.segments
        self.sized = True
