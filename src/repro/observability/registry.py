"""Metrics registry — named counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` exists per network (via
:func:`metrics_registry`), replacing ad-hoc ``Recorder.count`` call sites
with a single namespace the whole run shares: exertion latency, RPC round
trips, retries, breaker transitions, lease renewals, provider load and
buffer depths all land here under stable names with optional labels
(``rpc.calls{host=facade-host}``).

Design constraints, in order:

* **determinism** — a snapshot is a plain sorted dict; two identically
  seeded runs produce byte-identical snapshots;
* **hot-path cheapness** — instrumented components look their instruments
  up once and keep the handle (``self._m_calls = registry.counter(...)``);
  recording is then an attribute increment;
* **renderability** — a snapshot feeds both
  :func:`repro.metrics.table.render_metrics` (operator tables) and
  :meth:`MetricsRegistry.to_recorder` (the existing benchmark Recorder).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..metrics.quantiles import max_from_buckets, quantile_from_buckets
from ..sim import sanitizer as _san
from ..snapshot.registry import register_participant

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "metrics_registry", "DEFAULT_LATENCY_BUCKETS"]

#: Upper bucket bounds (seconds) suiting both RPC round trips and whole
#: exertions on the simulated LAN; the implicit +inf bucket is always last.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")
    metric_type = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        if _san._active is not None:
            # Increments commute: a "cw" access races with same-time reads
            # and plain writes, but not with other increments.
            _san._active.record(("metric", self.name), "cw",
                                f"counter {self.name!r}")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    __slots__ = ("name", "value", "max_value")
    metric_type = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        #: High-water mark, for "how deep did the queue ever get" questions.
        self.max_value = 0.0

    def set(self, value: float) -> None:
        if _san._active is not None:
            _san._active.record(("metric", self.name), "w",
                                f"gauge {self.name!r}")
        self._apply(float(value))

    def inc(self, amount: float = 1.0) -> None:
        if _san._active is not None:
            _san._active.record(("metric", self.name), "cw",
                                f"gauge {self.name!r}")
        self._apply(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        if _san._active is not None:
            _san._active.record(("metric", self.name), "cw",
                                f"gauge {self.name!r}")
        self.value -= amount

    def _apply(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self):
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket histogram (cumulative counts, like Prometheus).

    ``buckets`` are upper bounds; an implicit +inf bucket catches the rest.
    Fixed buckets keep recording O(log B) and snapshots comparable across
    runs regardless of sample order.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")
    metric_type = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} needs strictly increasing buckets")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +inf
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        if _san._active is not None:
            _san._active.record(("metric", self.name), "cw",
                                f"histogram {self.name!r}")
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-quantile sample."""
        return quantile_from_buckets(self.buckets, self.counts, q,
                                     interpolate=False)

    def quantile_interpolated(self, q: float) -> Optional[float]:
        """Linearly interpolated q-quantile estimate (see
        :func:`repro.metrics.quantiles.quantile_from_buckets`)."""
        return quantile_from_buckets(self.buckets, self.counts, q)

    @property
    def max_bound(self) -> Optional[float]:
        """Upper bound of the highest occupied bucket."""
        return max_from_buckets(self.buckets, self.counts)

    def snapshot(self):
        return {"count": self.count, "total": self.total,
                "buckets": list(self.buckets), "counts": list(self.counts)}


class MetricsRegistry:
    """All instruments of one simulation run, keyed by name + labels."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"{key!r} is already registered as {metric.metric_type}, "
                f"not {cls.metric_type}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- reading --------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """A counter/gauge's current value *without* creating the metric
        (querying an unknown name must not change the registry)."""
        key = _key(name, labels)
        if _san._active is not None:
            _san._active.record(("metric", key), "r", f"metric {key!r}")
        metric = self._metrics.get(key)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.value

    def quantile(self, name: str, q: float, **labels) -> Optional[float]:
        """Interpolated quantile of a histogram, ``None`` when the metric
        is unknown, empty or not a histogram (query must not create it)."""
        metric = self._metrics.get(_key(name, labels))
        if not isinstance(metric, Histogram):
            return None
        return metric.quantile_interpolated(q)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._metrics if k.startswith(prefix))

    def items(self, prefix: str = ""):
        """(key, instrument) pairs in sorted key order — the raw handles,
        for rollup machinery that needs more than :meth:`snapshot`."""
        keys = self.names(prefix)
        if _san._active is not None:
            for key in keys:
                _san._active.record(("metric", key), "r", f"metric {key!r}")
        return [(key, self._metrics[key]) for key in keys]

    def iter_items(self):
        """(key, instrument) pairs in registration order, unsorted — the
        cheap iteration the per-tick rollup path uses (order does not
        matter there: every key rolls into its own independent ring)."""
        return self._metrics.items()

    def snapshot(self, prefix: str = "") -> dict:
        """Deterministic (sorted) dump of every instrument's state."""
        return {key: {"type": self._metrics[key].metric_type,
                      "data": self._metrics[key].snapshot()}
                for key in self.names(prefix)}

    def to_recorder(self, recorder=None):
        """Fold the registry into a :class:`~repro.metrics.Recorder` so the
        existing benchmark/table tooling keeps working: counters and gauges
        become Recorder counters, histogram means become samples."""
        from ..metrics.recorder import Recorder
        recorder = recorder if recorder is not None else Recorder()
        for key in self.names():
            metric = self._metrics[key]
            if isinstance(metric, Histogram):
                recorder.count(key, metric.count)
            else:
                recorder.count(key, metric.value)
        return recorder

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics


def metrics_registry(network) -> MetricsRegistry:
    """The network's shared metrics registry (created on first use)."""
    registry = getattr(network, "_metrics_registry", None)
    if registry is None:
        registry = MetricsRegistry()
        network._metrics_registry = registry
        # Unlike the other network singletons this one never touches the
        # env itself, and tests attach registries to bare stand-in
        # networks — only a real simulated network joins the snapshot.
        env = getattr(network, "env", None)
        if env is not None:
            register_participant(env, "metrics", registry.snapshot)
    return registry
