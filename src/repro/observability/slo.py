"""SLO rules and the alert engine — declarative objectives over rollups.

An :class:`Slo` says what *good* looks like for one time-series signal
("exertion failure rate stays under 0.5/s", "the federation status gauge
stays below DOWN") and how impatient the alerting should be (evaluation
window, burn-rate multiplier, hysteresis). The :class:`SloEngine` evaluates
every rule once per rollup window against the
:class:`~repro.observability.timeseries.TimeSeriesStore` and emits
:class:`Alert` events on the firing and resolved edges only.

Flap control is structural, not statistical: a rule must breach
``for_windows`` consecutive evaluations before it fires and must then be
healthy ``clear_windows`` consecutive evaluations before it resolves, so a
signal oscillating around the threshold produces one alert pair, not a
stream. All timestamps are simulation seconds; with a fixed seed the alert
sequence is byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .timeseries import TimeSeriesStore

__all__ = ["Slo", "Alert", "SloEngine"]

_KINDS = ("rate", "value", "p50", "p95")
_OPS = ("<=", ">=")


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    ``metric`` names a time-series key (full key including labels); with
    ``sum_prefix=True`` it is treated as a prefix and matching series'
    rates are summed (collapsing per-host label fan-out). ``objective`` is
    the boundary the signal must stay on the ``op`` side of; the effective
    alert threshold is ``objective * burn_rate`` for ``<=`` objectives and
    ``objective / burn_rate`` for ``>=`` ones, so ``burn_rate > 1`` gives
    the system headroom before anyone is paged.
    """

    name: str
    metric: str
    objective: float
    kind: str = "rate"          # rate | value | p50 | p95
    op: str = "<="
    window: int = 3             # rollup windows aggregated per evaluation
    burn_rate: float = 1.0
    for_windows: int = 2        # consecutive breaches before firing
    clear_windows: int = 2      # consecutive healthy evaluations to resolve
    sum_prefix: bool = False
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"slo {self.name!r}: unknown kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"slo {self.name!r}: op must be one of {_OPS}")
        if self.window < 1 or self.for_windows < 1 or self.clear_windows < 1:
            raise ValueError(f"slo {self.name!r}: windows must be >= 1")
        if self.burn_rate <= 0:
            raise ValueError(f"slo {self.name!r}: burn_rate must be positive")
        if self.sum_prefix and self.kind != "rate":
            raise ValueError(
                f"slo {self.name!r}: sum_prefix only makes sense for rates")

    @property
    def threshold(self) -> float:
        if self.op == "<=":
            return self.objective * self.burn_rate
        return self.objective / self.burn_rate

    def signal(self, store: TimeSeriesStore) -> Optional[float]:
        if self.kind == "rate":
            if self.sum_prefix:
                return store.sum_rate(self.metric, self.window)
            return store.rate(self.metric, self.window)
        if self.kind == "value":
            return store.value(self.metric)
        return store.quantile(self.metric,
                              0.5 if self.kind == "p50" else 0.95,
                              self.window)

    def breached(self, signal: Optional[float]) -> bool:
        """No data is not a breach: an absent series has observed nothing."""
        if signal is None:
            return False
        if self.op == "<=":
            return signal > self.threshold
        return signal < self.threshold


@dataclass(frozen=True)
class Alert:
    """One edge of an SLO's state: it started firing, or it resolved."""

    t: float
    slo: str
    state: str          # "firing" | "resolved"
    signal: Optional[float]
    threshold: float
    description: str = ""

    def to_dict(self) -> dict:
        return {"t": self.t, "slo": self.slo, "state": self.state,
                "signal": self.signal, "threshold": self.threshold,
                "description": self.description}


@dataclass
class _SloState:
    firing: bool = False
    breach_streak: int = 0
    clear_streak: int = 0
    last_signal: Optional[float] = None


@dataclass
class SloEngine:
    """Evaluates every registered SLO once per rollup window."""

    store: TimeSeriesStore
    slos: list = field(default_factory=list)
    alerts: list = field(default_factory=list)

    def __post_init__(self):
        self._state: dict[str, _SloState] = {}
        self._listeners: list[Callable[[Alert], None]] = []

    def add(self, slo: Slo) -> Slo:
        if any(existing.name == slo.name for existing in self.slos):
            raise ValueError(f"slo {slo.name!r} already registered")
        self.slos.append(slo)
        self._state[slo.name] = _SloState()
        return slo

    def subscribe(self, listener: Callable[[Alert], None]) -> None:
        """Call ``listener(alert)`` on every firing/resolved edge."""
        self._listeners.append(listener)

    def firing(self) -> list[str]:
        return sorted(name for name, state in self._state.items()
                      if state.firing)

    def evaluate(self, now: float) -> list[Alert]:
        """One evaluation pass; returns the alerts emitted this pass."""
        emitted = []
        for slo in self.slos:
            state = self._state[slo.name]
            signal = slo.signal(self.store)
            state.last_signal = signal
            if slo.breached(signal):
                state.breach_streak += 1
                state.clear_streak = 0
                if not state.firing and state.breach_streak >= slo.for_windows:
                    state.firing = True
                    emitted.append(Alert(now, slo.name, "firing", signal,
                                         slo.threshold, slo.description))
            else:
                state.clear_streak += 1
                state.breach_streak = 0
                if state.firing and state.clear_streak >= slo.clear_windows:
                    state.firing = False
                    emitted.append(Alert(now, slo.name, "resolved", signal,
                                         slo.threshold, slo.description))
        for alert in emitted:
            self.alerts.append(alert)
            for listener in self._listeners:
                listener(alert)
        return emitted

    def snapshot(self) -> dict:
        """Deterministic view of every rule's current standing."""
        rules = []
        for slo in sorted(self.slos, key=lambda s: s.name):
            state = self._state[slo.name]
            rules.append({
                "name": slo.name,
                "metric": slo.metric,
                "kind": slo.kind,
                "op": slo.op,
                "objective": slo.objective,
                "threshold": slo.threshold,
                "window": slo.window,
                "state": "firing" if state.firing else "ok",
                "signal": state.last_signal,
            })
        return {"slos": rules,
                "alerts": [alert.to_dict() for alert in self.alerts]}
