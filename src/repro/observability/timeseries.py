"""Time-series rollups — fixed windows over the metrics registry.

The :class:`~repro.observability.registry.MetricsRegistry` is cumulative:
a counter only ever says "12 407 calls so far". Health questions are about
*now*: "how many failures per second in the last window?", "what was p95
latency over the last five seconds?". A :class:`TimeSeriesStore` answers
them by snapshotting every instrument at a fixed simulation-time interval
and keeping the per-window deltas in a bounded ring:

* **counter** → delta and rate (delta / interval) per window;
* **gauge** → last value and high-water mark per window;
* **histogram** → per-window sample count, p50/p95 (interpolated over the
  window's *bucket deltas*, not the cumulative counts) and a conservative
  max (highest occupied bucket bound).

Everything is driven by the simulation clock through
:meth:`TimeSeriesStore.collect`, so two identically seeded runs produce
identical series — the property the SLO engine's alert determinism and the
``repro status --json`` golden tests stand on.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..metrics.quantiles import max_from_buckets, quantile_from_buckets
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["TimeSeriesStore", "Window"]


class Window:
    """One metric's rollup for one collection interval."""

    __slots__ = ("t", "kind", "value", "delta", "rate", "count",
                 "p50", "p95", "max")

    def __init__(self, t: float, kind: str, value: Optional[float] = None,
                 delta: Optional[float] = None, rate: Optional[float] = None,
                 count: Optional[int] = None, p50: Optional[float] = None,
                 p95: Optional[float] = None, max: Optional[float] = None):
        self.t = t          # window *end* time (simulation seconds)
        self.kind = kind
        self.value = value  # gauges: value at collection time
        self.delta = delta  # counters/histogram count increase this window
        self.rate = rate    # counters: delta / interval
        self.count = count  # histograms: samples observed this window
        self.p50 = p50
        self.p95 = p95
        self.max = max

    def to_dict(self) -> dict:
        out = {"t": self.t, "kind": self.kind}
        for field in ("value", "delta", "rate", "count", "p50", "p95", "max"):
            v = getattr(self, field)
            if v is not None:
                out[field] = v
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Window t={self.t} {self.kind} {self.to_dict()}>"


class TimeSeriesStore:
    """Bounded ring of per-window rollups for every registry instrument.

    ``retention`` caps the number of windows kept per metric; older windows
    fall off the ring. The store never creates metrics and never touches
    the network — it reads instrument state in-process, which is free in
    the simulation's management plane (the same privilege the tracer has).
    """

    def __init__(self, registry: MetricsRegistry, interval: float = 1.0,
                 retention: int = 120):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.registry = registry
        self.interval = float(interval)
        self.retention = retention
        self._series: dict[str, deque] = {}
        #: Cumulative state at the previous collection, per metric key:
        #: counters → value; histograms → (count, counts list copy).
        self._previous: dict[str, object] = {}
        #: Sorted key list and per-prefix sublists, rebuilt only when a new
        #: metric first rolls (collect runs every simulated second and the
        #: health model filters by prefix every tick; sorting/scanning
        #: there is waste).
        self._sorted_names: Optional[list[str]] = None
        self._prefix_names: dict[str, list[str]] = {}
        self.collections = 0
        self.last_collected_at: Optional[float] = None

    # -- rolling --------------------------------------------------------------

    def _ring(self, key: str) -> deque:
        ring = self._series.get(key)
        if ring is None:
            ring = deque(maxlen=self.retention)
            self._series[key] = ring
            self._sorted_names = None
            self._prefix_names.clear()
        return ring

    def collect(self, now: float) -> None:
        """Roll every instrument's state into one window ending at ``now``.

        Quiet instruments append nothing: a counter that did not move, a
        gauge that kept its value, a histogram with no new samples. The
        readers below reconstruct the implied zero windows from the time
        horizon, so sparse rings read exactly like dense ones — and the
        per-tick cost tracks the *active* metric count, not the total.
        """
        # Hot path: runs once per simulated second over every metric in
        # the run, so it iterates unsorted, dispatches on exact type and
        # keeps attribute lookups out of the loop.
        series = self._series
        previous = self._previous
        interval = self.interval
        for key, metric in self.registry.iter_items():
            cls = type(metric)
            if cls is Counter:
                value = metric.value
                delta = value - previous.get(key, 0.0)
                if delta == 0.0 and key in series:
                    continue
                previous[key] = value
                self._ring(key).append(Window(
                    now, "counter", delta=delta, rate=delta / interval))
            elif cls is Gauge:
                ring = series.get(key)
                if ring is None:
                    ring = self._ring(key)
                elif ring:
                    last = ring[-1]
                    if (last.value == metric.value
                            and last.max == metric.max_value):
                        continue
                ring.append(Window(
                    now, "gauge", value=metric.value, max=metric.max_value))
            else:  # Histogram
                prev_counts = previous.get(key)
                counts = metric.counts
                if counts == prev_counts:
                    continue
                if prev_counts is None:
                    if key not in series:
                        self._ring(key)  # the series exists from t0 on
                    if not metric.count:
                        continue
                    window_counts = list(counts)
                else:
                    window_counts = [n - p for n, p
                                     in zip(counts, prev_counts)]
                previous[key] = list(counts)
                count = sum(window_counts)
                self._ring(key).append(Window(
                    now, "histogram", count=count,
                    delta=float(count), rate=count / interval,
                    p50=quantile_from_buckets(metric.buckets, window_counts,
                                              0.5),
                    p95=quantile_from_buckets(metric.buckets, window_counts,
                                              0.95),
                    max=max_from_buckets(metric.buckets, window_counts)))
        self.collections += 1
        self.last_collected_at = now

    # -- reading --------------------------------------------------------------

    def names(self, prefix: str = "") -> list[str]:
        if self._sorted_names is None:
            self._sorted_names = sorted(self._series)
        if not prefix:
            return list(self._sorted_names)
        cached = self._prefix_names.get(prefix)
        if cached is None:
            cached = [k for k in self._sorted_names if k.startswith(prefix)]
            self._prefix_names[prefix] = cached
        return list(cached)

    def series(self, key: str, windows: Optional[int] = None) -> list[Window]:
        ring = self._series.get(key)
        if not ring:
            return []
        out = list(ring)
        return out if windows is None else out[-windows:]

    def latest(self, key: str) -> Optional[Window]:
        ring = self._series.get(key)
        return ring[-1] if ring else None

    def _recent(self, key: str, windows: int) -> list:
        """Windows inside the last ``windows``-interval horizon, newest
        first. Quiet intervals appended nothing, so the horizon — not the
        ring position — decides membership; reading right-to-left keeps
        this O(windows), never O(retention)."""
        ring = self._series.get(key)
        if not ring or self.last_collected_at is None:
            return []
        cutoff = self.last_collected_at - windows * self.interval
        out = []
        for window in reversed(ring):
            if window.t <= cutoff + 1e-9 * self.interval:
                break
            out.append(window)
        return out

    def rate(self, key: str, windows: int = 1) -> float:
        """Mean per-second rate over the last ``windows`` windows (0.0 for
        unknown metrics: an absent counter has observed nothing)."""
        # Inlined _recent: this is the health model's per-entity hot read.
        ring = self._series.get(key)
        if not ring or self.last_collected_at is None:
            return 0.0
        interval = self.interval
        cutoff = (self.last_collected_at - windows * interval
                  + 1e-9 * interval)
        total = 0.0
        for window in reversed(ring):
            if window.t <= cutoff:
                break
            if window.delta is not None:
                total += window.delta
        return total / (windows * interval)

    def delta(self, key: str, windows: int = 1) -> float:
        """Total increase over the last ``windows`` windows."""
        return sum(w.delta for w in self._recent(key, windows)
                   if w.delta is not None)

    def value(self, key: str) -> Optional[float]:
        """Latest gauge value (``None`` for unknown/never-collected)."""
        window = self.latest(key)
        return window.value if window is not None else None

    def quantile(self, key: str, q: float, windows: int = 1) -> Optional[float]:
        """Worst (largest) per-window quantile across recent windows.

        Windows are rolled independently, so cross-window quantiles cannot
        be merged exactly; reporting the worst window is the conservative
        choice an alert should act on."""
        if q not in (0.5, 0.95):
            raise ValueError("per-window rollups keep only p50 and p95")
        field = "p50" if q == 0.5 else "p95"
        values = [getattr(w, field) for w in self._recent(key, windows)]
        values = [v for v in values if v is not None]
        return max(values) if values else None

    def sum_rate(self, prefix: str, windows: int = 1) -> float:
        """Summed rate across every metric sharing ``prefix`` — collapses
        per-host/per-provider label fan-out into one network-wide signal."""
        return sum(self.rate(key, windows) for key in self.names(prefix))

    def snapshot(self, prefix: str = "", windows: int = 1) -> dict:
        """Deterministic dump of the last ``windows`` windows per metric."""
        return {key: [w.to_dict() for w in self.series(key, windows)]
                for key in self.names(prefix)}

    def __len__(self) -> int:
        return len(self._series)
