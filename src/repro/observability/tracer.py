"""The simulation-time tracer: deterministic span trees per network.

One :class:`Tracer` exists per :class:`~repro.net.network.Network` (lazily
created through :func:`tracer_of`, like per-host RPC endpoints and the
resilience event stream), so every instrumented component in a run appends
to a single ordered span list. Span ids are plain counters and timestamps
are simulation seconds, which makes the whole trace a pure function of the
scenario seed.

Tracing is on by default — recording is an append and a couple of dict
writes — and can be switched off wholesale (``tracer.enabled = False``) for
overhead ablations: a disabled tracer hands out the shared
:data:`~repro.observability.span.NULL_SPAN` and records nothing.
"""

from __future__ import annotations

import zlib
from itertools import count
from typing import Callable, Iterable, Optional

from ..snapshot.registry import register_participant
from .span import NULL_SPAN, Span

__all__ = ["Tracer", "tracer_of", "render_span_tree"]


class Tracer:
    """Collects spans for one simulation run."""

    def __init__(self, env, enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._span_seq = count(1)

    # -- recording ------------------------------------------------------------

    def start_span(self, name: str, kind: str = "span",
                   host: Optional[str] = None,
                   parent_id: Optional[int] = None,
                   **attributes) -> Span:
        """Open a span; returns :data:`NULL_SPAN` when tracing is disabled.

        A span whose ``parent_id`` is unknown (or ``None``) roots a new
        trace; otherwise it joins its parent's trace. Span ids are plain
        counter ints (a root's trace id is its own span id): the cheapest
        deterministic id there is — no string formatting on the hot path
        and an atomic value for the context serialization to carry.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._by_id.get(parent_id) if parent_id is not None else None
        span_id = next(self._span_seq)
        if parent is not None:
            trace_id = parent.trace_id
        else:
            parent_id = None  # drop dangling links: better a root than an orphan
            trace_id = span_id
        span = Span(self, span_id, trace_id, parent_id, name, kind, host,
                    self.env._now,  # skip the property: once per hop
                    attributes or None)
        self.spans.append(span)
        self._by_id[span_id] = span
        return span

    def reset(self) -> None:
        """Drop all recorded spans (id counters restart too)."""
        self.spans.clear()
        self._by_id.clear()
        self._span_seq = count(1)

    # -- reading --------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span | int) -> list[Span]:
        span_id = span if isinstance(span, int) else span.span_id
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, predicate: Optional[Callable[[Span], bool]] = None,
             name: Optional[str] = None,
             kind: Optional[str] = None) -> list[Span]:
        """Spans matching all given filters, in creation order."""
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if kind is not None and span.kind != kind:
                continue
            if predicate is not None and not predicate(span):
                continue
            out.append(span)
        return out

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.ended_at is None]

    def __len__(self) -> int:
        return len(self.spans)


def tracer_of(network) -> Tracer:
    """The network's shared tracer (created on first use)."""
    tracer = getattr(network, "_tracer", None)
    if tracer is None:
        tracer = Tracer(network.env)
        network._tracer = tracer

        def _trace_state() -> dict:
            # Spans would dwarf every other section; a count plus a crc32
            # of the canonical JSONL pins the trace byte-for-byte without
            # embedding it.
            from .export import trace_to_jsonl
            return {"crc32": zlib.crc32(
                        trace_to_jsonl(tracer).encode("utf-8")),
                    "spans": len(tracer)}

        register_participant(network.env, "trace", _trace_state)
    return tracer


def _render_one(tracer: Tracer, span: Span, depth: int,
                lines: list, annotations: bool) -> None:
    pad = "  " * depth
    if span.ended_at is None:
        timing = f"t={span.started_at:.3f}.. (open)"
    else:
        timing = (f"t={span.started_at:.3f} +{span.duration * 1000:.1f}ms "
                  f"{span.status}")
    where = f" @{span.host}" if span.host else ""
    lines.append(f"{pad}{span.name} [{span.kind}]{where} {timing}")
    if annotations:
        for t, name, fields in span.annotations:
            detail = " ".join(f"{k}={v}" for k, v in fields)
            lines.append(f"{pad}  * {t:.3f} {name}" + (f" {detail}" if detail else ""))
    for child in tracer.children(span):
        _render_one(tracer, child, depth + 1, lines, annotations)


def render_span_tree(tracer: Tracer,
                     roots: Optional[Iterable[Span]] = None,
                     annotations: bool = True) -> str:
    """ASCII rendering of the span forest (indent = parent/child)."""
    lines: list[str] = []
    for root in (roots if roots is not None else tracer.roots()):
        _render_one(tracer, root, 0, lines, annotations)
    return "\n".join(lines)
