"""Spans — one timed node per exertion hop in the federation.

A span records *who did what, where and when* for a single hop of a
federated request: the requestor side of an exertion (``exert``), the RPC
round trip carrying it (``rpc``), the provider side executing it
(``serve``), and infrastructure actions (``rio``). Parent/child links are
carried across network hops in the exertion's service context (under
:data:`TRACE_PARENT_PATH`, exactly like the resilience layer's
``DEADLINE_PATH``), so a whole facade → jobber → provider → child-CSP
cascade folds into one tree per request.

All timestamps come from the simulation clock and all ids from a plain
per-tracer counter, so two runs with the same seed produce *byte-identical*
traces — the property the trace-based test harness and the determinism
suite are built on.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Span", "NULL_SPAN", "TRACE_PARENT_PATH", "propagate_trace",
           "get_trace_parent", "set_trace_parent"]

#: Service-context path carrying the parent span id across hops.
TRACE_PARENT_PATH = "trace/parent"


class Span:
    """One timed, annotated node of the trace tree.

    Mutable while open; :meth:`end` freezes the end time and status. Kept
    deliberately slim (``__slots__``, plain tuples for annotations) — spans
    are allocated on the hot path of every RPC call.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "kind", "host",
                 "started_at", "ended_at", "status", "_attributes",
                 "_annotations", "_tracer")

    def __init__(self, tracer, span_id: int, trace_id: int,
                 parent_id: Optional[int], name: str, kind: str,
                 host: Optional[str], started_at: float,
                 attributes: Optional[dict] = None):
        self._tracer = tracer
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.host = host
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.status = "open"
        # The attribute dict is adopted, not copied (the tracer hands us a
        # fresh kwargs dict), and the annotations list is created on first
        # use — both matter at ~700 spans per benchmark run.
        self._attributes = attributes
        self._annotations: Optional[list[tuple]] = None

    # -- recording ------------------------------------------------------------

    def annotate(self, name: str, **fields) -> "Span":
        """Attach a clock-stamped event to this span (a retry scheduled, a
        breaker skipped, a stale value substituted, ...)."""
        if self._annotations is None:
            self._annotations = []
        self._annotations.append((float(self._tracer.env.now), str(name),
                                  tuple(sorted(fields.items()))))
        return self

    def set_attribute(self, key: str, value) -> "Span":
        if self._attributes is None:
            self._attributes = {}
        self._attributes[key] = value
        return self

    def end(self, status: str = "ok") -> "Span":
        """Close the span; idempotent (the first close wins)."""
        if self.ended_at is None:
            # _now instead of the .now property: end() runs once per hop.
            self.ended_at = self._tracer.env._now
            self.status = status
        return self

    # -- reading --------------------------------------------------------------

    @property
    def attributes(self) -> dict:
        if self._attributes is None:
            self._attributes = {}
        return self._attributes

    @property
    def annotations(self) -> list[tuple]:
        """Ordered (time, name, sorted (key, value) tuple) entries — the
        same shape as :class:`~repro.metrics.Recorder` events, so span
        annotations compare with plain ``==``."""
        return self._annotations if self._annotations is not None else []

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "host": self.host,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "status": self.status,
            "attributes": self.attributes,
            "annotations": [
                {"time": t, "name": n, "fields": dict(f)}
                for t, n, f in self.annotations],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.span_id} {self.name!r} {self.status} "
                f"parent={self.parent_id}>")


class _NullSpan:
    """Do-nothing span returned by a disabled tracer.

    Instrumented code never has to check whether tracing is on: annotate,
    end and set_attribute all no-op, and ``span_id`` is ``None`` so parent
    propagation is skipped naturally.
    """

    __slots__ = ()
    span_id = None
    trace_id = None
    parent_id = None
    name = "<null>"
    kind = "null"
    host = None
    started_at = 0.0
    ended_at = None
    status = "null"
    attributes: dict = {}
    annotations: list = []
    duration = None

    def annotate(self, name, **fields):
        return self

    def set_attribute(self, key, value):
        return self

    def end(self, status="ok"):
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NullSpan>"


#: The shared no-op span (one instance for the whole process).
NULL_SPAN = _NullSpan()


# The trace-parent accessors poke the context's ``_data`` dict directly:
# TRACE_PARENT_PATH is a known-valid constant, so the per-call path
# validation of put_value/get_value buys nothing, and these run once per
# exertion hop (the ≤5% overhead budget of E-OBS is won in exactly these
# few hot lines).

def get_trace_parent(ctx) -> Optional[int]:
    """The parent span id carried by ``ctx``, or ``None``."""
    return ctx._data.get(TRACE_PARENT_PATH)


def set_trace_parent(ctx, span_id: int) -> None:
    """Stamp ``span_id`` as the trace parent for nested hops."""
    ctx._data[TRACE_PARENT_PATH] = span_id


def propagate_trace(src_ctx, dst_ctx) -> None:
    """Copy the trace-parent link from one service context to another.

    Used wherever a provider fans a request out into nested exertions with
    fresh contexts (a jobber running components, a CSP collecting children,
    the facade exerting management tasks), so the nested hop's span becomes
    a child of the current hop's span.
    """
    if src_ctx is None or dst_ctx is None:
        return
    parent = src_ctx._data.get(TRACE_PARENT_PATH)
    if parent is not None:
        dst_ctx._data[TRACE_PARENT_PATH] = parent
