"""Flight recorder — a wall-clock profiler for the simulation kernel.

The ROADMAP's scale arc can prove *that* the kernel is fast (E-KERNEL) but
not *where* wall-clock time goes inside a run. This module answers that:
a :class:`FlightRecorder` attaches to an :class:`~repro.sim.Environment`
through the kernel's ``_profiler`` hook and stamps ``perf_counter``
around every event's callbacks, aggregating

* **per-event-type / per-callback attribution** — each step is charged to
  a ``(event type, target)`` pair, where the target is the process a
  ``Process._resume`` callback belongs to (``process:health-monitor``),
  the condition instance for fan-in events, or the bare event type;
* **rolling throughput** — an (elapsed wall, sim time, events) sample
  every ``sample_every`` events, so a long run yields an events/sec
  trajectory instead of one end-to-end average;
* **scheduler internals** — the pending-set structure's operation totals
  (pushes, pops, tombstone cancels, resizes, heals, bucket-occupancy
  high-water for the calendar queue), read from
  :meth:`~repro.sim.Environment.scheduler_stats` at report time;
* **service-time aggregation** — sim-side per-provider service-time and
  per-host RPC round-trip summaries folded out of the metrics registry,
  so one report ties wall-clock hot spots to the simulated services that
  caused them.

Two recording modes trade precision for cost:

* **sampled** (the default): a statistical profile. The recorder leaves
  ``exit`` as ``None``, which tells the kernel to run its own countdown
  inline — all but every ``period``-th event pay one integer decrement,
  no hook call, no bracketing ``try/finally``. A triggered sample takes
  one clock stamp and charges the whole stretch since the previous
  stamp — scheduler pops, dispatch and callbacks for ``period`` events —
  to the event caught at the stamp. Exactly the semantics of an
  interrupt-driven sampling profiler: per-row shares converge on the
  true distribution while the per-event cost stays near the kernel's
  fast path. Attribution covers ~100% of the run by construction (every
  stretch is charged to some row; at most ``period - 1`` trailing
  events go unattributed). ``period=1`` degenerates to exact per-event
  timing. This is the always-on mode E-PROF gates at ≤5% wall clock.
* **detail** (``detail=True``): exact, not sampled — two stamps per
  event, splitting callback time from kernel dispatch time (reported as
  an explicit ``kernel/scheduler+dispatch`` row) with exact per-row
  event counts. Costs 15-25% on event-dense workloads, which is fine
  for its user: the explicit ``repro profile`` CLI run.

Determinism contract (DESIGN §12): profiling data is a **side channel**.
The recorder only ever *reads* simulation state — it never schedules,
never draws randomness, never mutates an event — so event order, metrics,
traces, ``status --json`` bytes and chaos verdicts are identical with the
recorder attached or not. That invariant is pinned by
``tests/observability/test_profile.py`` and the E-PROF benchmark. The
wall-clock values themselves are of course machine-dependent; they never
feed back into the simulation.

The hook bodies are generated as closures at attach time: the kernel
calls them once per event, and closure-cell state is measurably cheaper
than attribute traffic on ``self`` at that call rate.
"""
# repro: allow-file[DET001] - the flight recorder *is* the wall clock probe: it measures the simulator itself and stays out of sim state

from __future__ import annotations

import time
from typing import Callable, Optional

from ..sim.core import Process

__all__ = ["FlightRecorder", "profile_run", "service_times"]


class FlightRecorder:
    """Aggregating wall-clock profiler for one simulation run.

    ``clock`` is injectable (tests pass a fake counter); it must be a
    zero-argument callable returning monotonically increasing seconds.
    ``sample_every`` sets the rolling-throughput granularity in events.
    ``period`` is the sampled mode's countdown: one clock stamp every
    ``period`` events (1 = exact per-event timing). ``detail`` selects
    the exact two-stamp callback/kernel split (see the module
    docstring); leave it off for always-on recording.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 sample_every: int = 4096, period: int = 32,
                 detail: bool = False):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if period < 1:
            raise ValueError("period must be >= 1")
        self._clock = clock
        self.sample_every = sample_every
        self.period = period
        self.detail = detail
        self.env = None
        #: (event class, target) -> [count, wall_seconds]; target is a
        #: process name, a pre-formatted 1-tuple (cold path) or None.
        #: In sampled mode ``count`` is the number of *samples*; report()
        #: scales it by ``period`` into an event-count estimate.
        self._agg: dict[tuple, list] = {}
        #: Rolling throughput samples: (elapsed_wall_s, sim_t, events).
        self._throughput: list[tuple] = []
        self._events = 0
        self._attached_at: Optional[float] = None
        self._run_wall = 0.0       # wall seconds covered while attached
        self._attributed_wall = 0.0  # wall seconds charged to event rows
        self._kernel_wall = 0.0    # detail mode: dispatch between callbacks
        # Kernel hook slots; real closures are installed by attach().
        self.enter = self._not_attached
        self.exit = self._not_attached
        self._sync = lambda: None

    @staticmethod
    def _not_attached(event) -> None:
        raise RuntimeError("recorder is not attached (use attach()/"
                           "profile_run)")

    # -- lifecycle -------------------------------------------------------------

    def attach(self, env) -> "FlightRecorder":
        """Start recording ``env``; returns self (context-manager style is
        :func:`profile_run`). Re-attaching to another env is an error —
        one recorder aggregates one run."""
        if self.env is not None and self.env is not env:
            raise ValueError("recorder is already attached to another env")
        if env._profiler is not None and env._profiler is not self:
            raise ValueError("environment already has a profiler attached")
        self.env = env
        self._attached_at = self._clock()
        self._install_hooks(env)
        if not self.detail:
            env._prof_countdown = self.period
        env._profiler = self
        return self

    def _install_hooks(self, env) -> None:
        """Build ``enter``/``exit`` as closures over local cells.

        They run once per kernel event; keeping the mutable counters in
        closure cells instead of instance attributes is what keeps the
        combined mode inside its overhead budget. ``_sync`` publishes the
        cells back onto the instance for report()/detach().
        """
        clock = self._clock
        agg = self._agg
        agg_get = agg.get
        sample_every = self.sample_every
        period = self.period
        throughput_append = self._throughput.append
        attached_at = self._attached_at
        base_events = self._events
        events = base_events
        samples = 0
        # Throughput cadence, expressed in triggers so the hot path never
        # tracks a second counter.
        throughput_every = max(1, sample_every // period)
        kernel_wall = 0.0
        last_mark = attached_at
        label = None
        t0 = attached_at

        def sampled_enter(event):
            # Called by the kernel only on every period-th event (its
            # inline countdown gates the rest). A trigger charges the
            # stretch since the previous stamp — period events of pops,
            # dispatch and callbacks — to the event caught here, while
            # its callback list is intact (_run_callbacks clears it).
            nonlocal samples, last_mark
            now = clock()
            dt = now - last_mark
            last_mark = now
            cb = event.callbacks
            if cb:
                try:
                    owner = cb[0].__self__
                except AttributeError:
                    owner = None
                if type(owner) is Process:
                    key = (event.__class__, owner.name)
                else:  # cold: condition checks, run()'s stop hook, ...
                    key = (event.__class__, (_cold_target(cb[0], owner),))
            else:
                key = (event.__class__, None)
            entry = agg_get(key)
            if entry is None:
                agg[key] = [1, dt]
            else:
                entry[0] += 1
                entry[1] += dt
            samples += 1
            if not samples % throughput_every:
                throughput_append(
                    (now - attached_at, env._now,
                     base_events + samples * period))

        def detail_enter(event):
            nonlocal label, t0, kernel_wall
            callbacks = event.callbacks
            if callbacks:
                owner = getattr(callbacks[0], "__self__", None)
                if type(owner) is Process:
                    label = (event.__class__, owner.name)
                else:
                    label = (event.__class__,
                             (_cold_target(callbacks[0], owner),))
            else:
                label = (event.__class__, None)
            now = clock()
            # Since the previous stamp the kernel was popping/dispatching.
            kernel_wall += now - last_mark
            t0 = now

        def detail_exit(event):
            nonlocal last_mark, events
            now = clock()
            dt = now - t0
            last_mark = now
            entry = agg_get(label)
            if entry is None:
                agg[label] = [1, dt]
            else:
                entry[0] += 1
                entry[1] += dt
            events += 1
            if not events % sample_every:
                throughput_append((now - attached_at, env._now, events))

        # Attributed wall equals the sum charged into the aggregation table
        # in both modes, so the hot path never maintains a separate total —
        # sync() derives it on demand. Seed the baseline with whatever a
        # previous attach already published so re-attaching never
        # double-counts.
        synced_attributed = sum(entry[1] for entry in agg.values())
        synced_kernel = 0.0

        detail = self.detail

        def sync():
            # Idempotent: publishes only the growth since the last sync,
            # so live report()/events reads never double-count. The
            # sampled mode reconstructs the exact event count from the
            # countdown instead of paying a counter on every call.
            nonlocal synced_attributed, synced_kernel
            if detail:
                self._events = events
            else:
                # The kernel's countdown says how far into the current
                # period the run is, making the count exact.
                self._events = (base_events + samples * period
                                + (period - env._prof_countdown))
            attributed = sum(entry[1] for entry in agg.values())
            self._attributed_wall += attributed - synced_attributed
            self._kernel_wall += kernel_wall - synced_kernel
            synced_attributed = attributed
            synced_kernel = kernel_wall

        if detail:
            self.enter, self.exit = detail_enter, detail_exit
        else:
            # exit=None tells the kernel this recorder is observe-only:
            # it runs its inline countdown and calls enter only on every
            # period-th event, skipping the try/finally entirely.
            self.enter, self.exit = sampled_enter, None
        self._sync = sync

    def detach(self) -> None:
        """Stop recording (idempotent); totals and samples are kept."""
        if self.env is None:
            return
        self._sync()
        self._sync = lambda: None
        self.enter = self._not_attached
        self.exit = self._not_attached
        if self._attached_at is not None:
            self._run_wall += self._clock() - self._attached_at
            self._attached_at = None
        if self.env._profiler is self:
            self.env._profiler = None

    @property
    def attached(self) -> bool:
        return self.env is not None and self.env._profiler is self

    @property
    def events(self) -> int:
        self._sync()
        return self._events

    # -- reporting -------------------------------------------------------------

    def report(self, registry=None, top: Optional[int] = None) -> dict:
        """The full flight-recorder report as plain JSON-ready data.

        ``registry`` (a :class:`MetricsRegistry`) adds the sim-side
        service-time aggregation; ``top`` truncates the attribution table
        (the dropped tail is summed into the ``truncated`` entry so shares
        always account for every measured event).
        """
        self._sync()
        wall = self._run_wall
        if self._attached_at is not None:  # still attached: live view
            wall += self._clock() - self._attached_at
        attributed = self._attributed_wall
        kernel_wall = self._kernel_wall
        # Sampled mode stores sample counts; scale them into event-count
        # estimates so the column means the same thing in both modes.
        scale = 1 if self.detail else self.period
        rows = sorted(
            ((cls.__name__, _display_target(target), count * scale, seconds)
             for (cls, target), (count, seconds) in self._agg.items()),
            key=lambda row: (-row[3], row[0], row[1]))
        if self.detail:
            # Detail mode measured dispatch separately — surface it as an
            # explicit named row, not unaccounted mystery time.
            rows.insert(
                _insertion_index(rows, kernel_wall),
                ("kernel", "scheduler+dispatch", self._events, kernel_wall))
            attributed += kernel_wall
        truncated = None
        if top is not None and len(rows) > top:
            tail = rows[top:]
            rows = rows[:top]
            truncated = {
                "rows": len(tail),
                "count": sum(r[2] for r in tail),
                "wall_s": round(sum(r[3] for r in tail), 6),
            }
        attribution = [
            {"event_type": etype, "target": target, "count": count,
             "wall_s": round(seconds, 6),
             "share": round(seconds / wall, 4) if wall > 0 else 0.0}
            for etype, target, count, seconds in rows]
        report = {
            "mode": "detail" if self.detail else "sampled",
            "events": self._events,
            "wall_s": round(wall, 6),
            "events_per_sec": (round(self._events / wall, 1)
                               if wall > 0 else 0.0),
            # Fraction of attached wall time landing in a named attribution
            # row; the remainder is time outside the event loop (attach-to-
            # first-event, run()-call framing) plus the recorder's own
            # clock reads.
            "attributed_share": (round(min(1.0, attributed / wall), 4)
                                 if wall > 0 else 0.0),
            "attribution": attribution,
            "throughput": [
                {"wall_s": round(w, 6), "sim_t": t, "events": n}
                for w, t, n in self._throughput],
            "scheduler": (self.env.scheduler_stats()
                          if self.env is not None else None),
        }
        if self.detail:
            if wall > 0:
                report["kernel_share"] = round(kernel_wall / wall, 4)
                report["callback_share"] = round(
                    (attributed - kernel_wall) / wall, 4)
        else:
            report["sample_period"] = self.period
        if truncated is not None:
            report["truncated"] = truncated
        if registry is not None:
            report["services"] = service_times(registry)
        return report


def service_times(registry) -> dict:
    """Sim-side service-time aggregation out of the metrics registry.

    Summarizes every ``provider.service_time{provider=...}`` and
    ``rpc.rtt{host=...}`` histogram into count / mean / p50 / p95 rows —
    deterministic (pure function of registry state), so it rides along in
    the profile report without breaking the side-channel contract.
    """
    out: dict[str, dict] = {}
    for section, prefix in (("providers", "provider.service_time"),
                            ("rpc", "rpc.rtt")):
        rows = {}
        for key, metric in registry.items(prefix):
            if getattr(metric, "metric_type", None) != "histogram" \
                    or not metric.count:
                continue
            label = key[len(prefix):].strip("{}")
            rows[label or "-"] = {
                "count": metric.count,
                "mean": round(metric.mean, 6),
                "p50": _round(metric.quantile_interpolated(0.5)),
                "p95": _round(metric.quantile_interpolated(0.95)),
            }
        out[section] = rows
    return out


def _round(value, digits: int = 6):
    return round(value, digits) if value is not None else None


def _cold_target(cb, owner) -> str:
    """Display target for the rare non-``Process._resume`` callbacks
    (condition ``_check`` hooks, ``run()``'s stop closure, plain
    functions). Computed eagerly — this path fires a handful of times per
    run — and wrapped in a 1-tuple by the caller so report-time rendering
    can tell it from a process name."""
    if owner is not None:
        name = getattr(owner, "name", None)
        if name is not None:
            return f"{type(owner).__name__}:{name}"
        return type(owner).__name__
    return getattr(cb, "__qualname__", "callback")


def _display_target(target) -> str:
    if target is None:
        return "-"
    if type(target) is tuple:  # pre-formatted cold-path label
        return target[0]
    return f"process:{target}"


def _insertion_index(rows: list, seconds: float) -> int:
    """Where a row with ``seconds`` of wall time slots into the
    descending-by-wall attribution table."""
    for i, row in enumerate(rows):
        if seconds > row[3]:
            return i
    return len(rows)


class profile_run:
    """Context manager: attach a recorder to ``env`` for the ``with`` body.

    >>> recorder = FlightRecorder(detail=True)
    >>> with profile_run(env, recorder):
    ...     env.run(until=30.0)
    >>> recorder.report()
    """

    def __init__(self, env, recorder: Optional[FlightRecorder] = None):
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._env = env

    def __enter__(self) -> FlightRecorder:
        return self.recorder.attach(self._env)

    def __exit__(self, *exc) -> None:
        self.recorder.detach()
