"""Status rendering — the ``repro status`` / ``repro health`` views.

Turns a :meth:`~repro.observability.health.HealthMonitor.snapshot` into the
operator-facing text tree (network -> node -> provider, mirroring the
browser's topology pane) and into a canonical JSON document. Both are pure
functions of the snapshot: the same seeded run produces byte-identical
output, which is what the golden-file CLI tests pin down.
"""

from __future__ import annotations

import json

__all__ = ["render_status", "render_health", "status_json"]

_MARK = {"UP": "+", "DEGRADED": "!", "DOWN": "x", "UNKNOWN": "?"}


def _tag(status: str, reasons) -> str:
    mark = _MARK.get(status, "?")
    out = f"[{mark}] {status}"
    if reasons:
        out += " (" + ", ".join(reasons) + ")"
    return out


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_status(snapshot: dict, title: str = "SenSORCER network") -> str:
    """The ``repro status`` tree: federation -> nodes -> providers."""
    federation = snapshot["federation"]
    t = snapshot.get("t")
    stamp = f" (t={t:.1f}s simulated)" if t is not None else ""
    lines = [f"{title}{stamp}", "=" * 56]
    lines.append(f"federation {_tag(federation['status'], federation['reasons'])}")
    lines.append(f"  nodes: {federation['nodes']}  "
                 f"providers: {federation['providers']} "
                 f"({federation['degraded']} degraded, "
                 f"{federation['down']} down)")
    providers = snapshot.get("providers", {})
    for node in sorted(snapshot.get("nodes", {})):
        record = snapshot["nodes"][node]
        lines.append(f"  node {node:<18} {_tag(record['status'], record['reasons'])}")
        for name in record["providers"]:
            provider = providers[name]
            lease = provider.get("lease_remaining")
            lease_str = f"  lease {lease:5.1f}s" if lease is not None else ""
            lines.append(f"    {name:<24} [{provider['kind']}] "
                         f"{_tag(provider['status'], provider['reasons'])}"
                         f"{lease_str}")
    slos = snapshot.get("slos", [])
    if slos:
        firing = sum(1 for rule in slos if rule["state"] == "firing")
        lines.append(f"  slos: {len(slos) - firing} ok, {firing} firing")
    alerts = snapshot.get("alerts", [])
    open_alerts = [a for a in alerts if a["state"] == "firing"]
    lines.append(f"  alerts: {len(alerts)} emitted, "
                 f"{len(open_alerts)} currently firing"
                 if alerts else "  alerts: none")
    return "\n".join(lines)


def render_health(snapshot: dict) -> str:
    """The ``repro health`` detail: SLO table, alert log, transitions."""
    lines = [render_status(snapshot), "", "SLOs", "-" * 56]
    slos = snapshot.get("slos", [])
    for rule in slos:
        lines.append(f"  {rule['name']:<24} {rule['state']:<7} "
                     f"signal {_fmt(rule['signal']):>8}  "
                     f"{rule['kind']} {rule['op']} {_fmt(rule['threshold'])}  "
                     f"[{rule['metric']}]")
    if not slos:
        lines.append("  (none registered)")
    lines += ["", "Alerts", "-" * 56]
    alerts = snapshot.get("alerts", [])
    for alert in alerts:
        lines.append(f"  t={alert['t']:8.1f}  {alert['slo']:<24} "
                     f"{alert['state']:<9} signal {_fmt(alert['signal'])} "
                     f"vs {_fmt(alert['threshold'])}")
    if not alerts:
        lines.append("  (none)")
    lines += ["", "Status transitions", "-" * 56]
    transitions = snapshot.get("transitions", [])
    for change in transitions:
        reasons = ", ".join(change["reasons"]) or "-"
        lines.append(f"  t={change['t']:8.1f}  {change['entity']:<28} "
                     f"{change['from']:>8} -> {change['to']:<8} [{reasons}]")
    if not transitions:
        lines.append("  (none)")
    return "\n".join(lines)


def status_json(snapshot: dict, **meta) -> str:
    """Canonical JSON export: sorted keys, fixed separators, trailing
    newline — byte-identical across same-seed runs."""
    document = dict(meta)
    document.update(snapshot)
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"
