"""JSON-lines export of traces and metrics.

One line per span (creation order) and one line per metric (sorted name
order), serialized with sorted keys and compact separators — the output is
a pure function of the run, so two identically seeded scenario runs export
*byte-identical* files. That property is asserted by the determinism suite
and is what makes traces diffable artifacts.
"""

from __future__ import annotations

import json
from typing import Optional

from .registry import MetricsRegistry
from .tracer import Tracer

__all__ = ["trace_to_jsonl", "metrics_to_jsonl", "dump_jsonl"]


def _line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_to_jsonl(tracer: Tracer) -> str:
    """Every span as one ``{"record": "span", ...}`` JSON line."""
    return "\n".join(_line({"record": "span", **span.to_dict()})
                     for span in tracer.spans)


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """Every instrument as one ``{"record": "metric", ...}`` JSON line."""
    snapshot = registry.snapshot()
    return "\n".join(_line({"record": "metric", "name": name, **entry})
                     for name, entry in snapshot.items())


def dump_jsonl(path, tracer: Optional[Tracer] = None,
               registry: Optional[MetricsRegistry] = None) -> int:
    """Write trace and/or metrics lines to ``path``; returns line count."""
    parts = []
    if tracer is not None and len(tracer):
        parts.append(trace_to_jsonl(tracer))
    if registry is not None and len(registry):
        parts.append(metrics_to_jsonl(registry))
    text = "\n".join(p for p in parts if p)
    with open(path, "w", encoding="utf-8") as fh:
        if text:
            fh.write(text + "\n")
    return text.count("\n") + 1 if text else 0
