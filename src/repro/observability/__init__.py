"""Observability layer — exertion tracing, metrics, deterministic export.

The paper's Sensor Browser exists to answer "what is the federation doing
right now?"; this package is that answer for the reproduction:

* :class:`Tracer` / :class:`Span` — a simulation-time tracer that opens a
  span per exertion hop (facade → jobber → provider, CSP → child ESP, RPC
  send/receive) with parent/child links carried in the service context
  across hops (:data:`TRACE_PARENT_PATH`), yielding one deterministic span
  tree per request;
* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms shared by every component of a run (exertion latency, queue
  depth, retries, breaker transitions, lease renewals);
* :mod:`export <repro.observability.export>` — byte-stable JSON-lines
  dumps of both, backing the ``repro trace`` CLI and the trace-based test
  harness in ``tests/helpers/tracing.py``.

Everything is keyed per :class:`~repro.net.network.Network` through
:func:`tracer_of` / :func:`metrics_registry`, mirroring how RPC endpoints
and resilience events attach to a run.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
)
from .span import (NULL_SPAN, TRACE_PARENT_PATH, Span, get_trace_parent,
                   propagate_trace, set_trace_parent)
from .tracer import Tracer, render_span_tree, tracer_of
from .export import dump_jsonl, metrics_to_jsonl, trace_to_jsonl
from .timeseries import TimeSeriesStore, Window
from .slo import Alert, Slo, SloEngine
from .health import (DEGRADED, DOWN, UP, HealthModel, HealthMonitor,
                     default_slos, health_monitor, overload_slos)
from .status import render_health, render_status, status_json
from .profile import FlightRecorder, profile_run, service_times
from .store import HistoryStore

__all__ = [
    "Alert",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEGRADED",
    "DOWN",
    "FlightRecorder",
    "Gauge",
    "HealthModel",
    "HealthMonitor",
    "Histogram",
    "HistoryStore",
    "MetricsRegistry",
    "NULL_SPAN",
    "Slo",
    "SloEngine",
    "Span",
    "TRACE_PARENT_PATH",
    "TimeSeriesStore",
    "Tracer",
    "UP",
    "Window",
    "default_slos",
    "dump_jsonl",
    "health_monitor",
    "overload_slos",
    "render_health",
    "render_status",
    "status_json",
    "metrics_registry",
    "metrics_to_jsonl",
    "get_trace_parent",
    "profile_run",
    "propagate_trace",
    "service_times",
    "set_trace_parent",
    "render_span_tree",
    "tracer_of",
    "trace_to_jsonl",
]
