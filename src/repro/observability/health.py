"""Network health model — UP/DEGRADED/DOWN per provider, node, federation.

The paper's Sensor Browser exists so an operator can see whether the
federation is healthy; PR 2 gave us the raw signals (spans, counters,
resilience events) and this module turns them into that judgement. One
:class:`HealthMonitor` runs per network (``health_monitor(net)``, like
``tracer_of``): every ``interval`` simulated seconds it

1. asks the :class:`HealthModel` to re-derive each entity's status and
   publish it as ``health.status{entity=...}`` gauges (0=UP, 1=DEGRADED,
   2=DOWN);
2. rolls the metrics registry — including those fresh gauges — into the
   :class:`~repro.observability.timeseries.TimeSeriesStore`;
3. lets the :class:`~repro.observability.slo.SloEngine` evaluate its rules
   over the rollups and emit alerts.

Status derivation (see DESIGN §4e for the full table): a provider is DOWN
when its host is down or its registration lease expired; DEGRADED when its
lease is at risk (renewals overdue past ``at_risk_fraction`` of the lease),
a circuit breaker on it is open/half-open, or its windowed failure rate
breaches the threshold; UP otherwise. Nodes aggregate their providers plus
host-local RPC-timeout rates; the federation aggregates nodes plus
network-wide deadline-miss / exertion-error rates and provisioning
shortfall. Liveness is *lease-renewal* liveness, exactly the signal the
paper credits for keeping the network "healthy and robust" (§IV.B).

Everything here reads simulation state in-process (LUS lease tables,
breaker registries, host flags) — the management plane's privileged view,
deterministic and free of network traffic, like the tracer.
"""

from __future__ import annotations

from typing import Optional

from .registry import metrics_registry
from .slo import Slo, SloEngine
from .timeseries import TimeSeriesStore

__all__ = ["UP", "DEGRADED", "DOWN", "HealthModel", "HealthMonitor",
           "default_slos", "health_monitor", "overload_slos"]

UP = "UP"
DEGRADED = "DEGRADED"
DOWN = "DOWN"

#: Gauge encoding of a status (the SLO engine alerts on these).
STATUS_VALUE = {UP: 0.0, DEGRADED: 1.0, DOWN: 2.0}
_SEVERITY = {UP: 0, DEGRADED: 1, DOWN: 2}

# Reason codes (stable strings — they appear in snapshots and goldens).
R_HOST_DOWN = "host-down"
R_LEASE_EXPIRED = "lease-expired"
R_LEASE_AT_RISK = "lease-at-risk"
R_BREAKER_OPEN = "breaker-open"
R_ERROR_RATE = "error-rate"
R_RPC_TIMEOUTS = "rpc-timeouts"
R_PROVIDERS_DOWN = "providers-down"
R_PROVIDERS_DEGRADED = "providers-degraded"
R_NODES_DOWN = "nodes-down"
R_NODES_DEGRADED = "nodes-degraded"
R_DEADLINE_MISSES = "deadline-misses"
R_EXERTION_ERRORS = "exertion-errors"
R_PROVISION_SHORTFALL = "provision-shortfall"


def _worst(statuses) -> str:
    worst = UP
    for status in statuses:
        if _SEVERITY[status] > _SEVERITY[worst]:
            worst = status
    return worst


class _TrackedProvider:
    """What the model remembers about one logical provider (keyed by name,
    so a re-provisioned replacement with a fresh service id is recognized
    as the same service coming back — Rio semantics)."""

    __slots__ = ("name", "node", "kind", "service_id", "expired", "at_risk")

    def __init__(self, name: str, node: str, kind: str, service_id: str):
        self.name = name
        self.node = node
        self.kind = kind
        self.service_id = service_id
        self.expired = False  # its lease lapsed (vs. graceful departure)
        self.at_risk = 0      # consecutive evaluations with a thin lease


class HealthModel:
    """Derives entity statuses from lease, breaker and rollup state."""

    def __init__(self, network, store: TimeSeriesStore,
                 at_risk_fraction: float = 0.4,
                 at_risk_ticks: int = 2,
                 error_rate_threshold: float = 0.5,
                 deadline_rate_threshold: float = 0.5,
                 window: int = 3):
        self.network = network
        self.store = store
        self.at_risk_fraction = at_risk_fraction
        #: A lease must look thin this many consecutive evaluations before
        #: it degrades the provider — a healthy renewal cycle can briefly
        #: dip below the fraction (renewal fires at the halfway point, one
        #: maintenance round late at worst) and that is not a health event.
        self.at_risk_ticks = at_risk_ticks
        self.error_rate_threshold = error_rate_threshold
        self.deadline_rate_threshold = deadline_rate_threshold
        self.window = window
        self.registry = metrics_registry(network)
        self._luses: list = []
        self._providers: dict[str, _TrackedProvider] = {}
        #: Names seen live on more than one host at once (two cybernodes
        #: both called "Cybernode"): such entities are keyed ``name@host``,
        #: stickily, so each keeps its own status history. Unambiguous
        #: names stay plain, which is what lets a re-provisioned service
        #: (same name, fresh id, maybe another host) remain one entity.
        self._ambiguous: set = set()
        self._status: dict[str, str] = {}
        #: Ordered, sim-stamped status changes: dicts with t/entity/from/to/reasons.
        self.transitions: list[dict] = []
        self._m_transitions = self.registry.counter("health.transitions")
        #: entity -> its health.status gauge; resolving through the
        #: registry costs a key format + dict probe per entity per tick.
        self._status_gauges: dict[str, object] = {}
        self._last: Optional[dict] = None

    # -- wiring ---------------------------------------------------------------

    def register_lus(self, lus) -> None:
        """Add one LookupService explicitly (tests); started LUSs announce
        themselves on ``network._lookup_services`` and are found anyway."""
        if lus not in self._luses:
            self._luses.append(lus)

    def _all_luses(self) -> list:
        announced = getattr(self.network, "_lookup_services", [])
        return self._luses + [lus for lus in announced
                              if lus not in self._luses]

    def on_event(self, kind: str, fields: dict) -> None:
        """Resilience-event hook: lease expiry marks the provider for an
        immediate DOWN at the next evaluation; graceful deregistration
        makes the model forget the provider instead."""
        name = fields.get("service")
        if not name:
            return
        key = name
        if key not in self._providers:
            key = f"{name}@{fields.get('host')}"
        tracked = self._providers.get(key)
        if tracked is None:
            return
        if kind == "lease_expired":
            tracked.expired = True
        elif kind == "service_deregistered":
            del self._providers[key]
            self._status.pop(f"provider:{key}", None)

    # -- derivation -----------------------------------------------------------

    def _kind_of(self, item) -> str:
        for attr in item.attributes:
            service_kind = getattr(attr, "service_kind", None)
            if service_kind:
                return service_kind
        for type_name in item.service.type_names:
            if type_name != "Servicer":
                return type_name
        return "service"

    def _live_registrations(self) -> dict:
        """key -> (item, lease_remaining, lease_duration) over all LUSs."""
        raw = []
        for lus in self._all_luses():
            if not lus.host.up:
                continue  # its in-memory table died with the host
            for service_id, item in lus._items.items():
                lease_id = lus._lease_of_service.get(service_id)
                record = (lus._landlord._leases.get(lease_id)
                          if lease_id is not None else None)
                if record is None:
                    continue
                remaining = max(0.0, record.expiration - lus.env.now)
                duration = record.duration or remaining
                raw.append((item.name() or service_id[:8], item,
                            remaining, duration))
        hosts_of: dict[str, set] = {}
        for name, item, _remaining, _duration in raw:
            hosts_of.setdefault(name, set()).add(item.service.host)
        self._ambiguous.update(name for name, hosts in hosts_of.items()
                               if len(hosts) > 1)
        live: dict[str, tuple] = {}
        for name, item, remaining, duration in raw:
            key = (f"{name}@{item.service.host}"
                   if name in self._ambiguous else name)
            previous = live.get(key)
            # Registered with several LUSs: judge by the healthiest lease.
            if previous is None or remaining > previous[1]:
                live[key] = (item, remaining, duration)
        return live

    def _breaker_states(self) -> dict:
        """service_id -> worst breaker state name across all caller hosts."""
        order = {"closed": 0, "half_open": 1, "open": 2}
        worst: dict[str, str] = {}
        for host in self.network.hosts.values():
            breakers = getattr(host, "_breaker_registry", None)
            if breakers is None:
                continue
            for key, state in breakers.snapshot().items():
                if order[state] > order.get(worst.get(key, "closed"), 0):
                    worst[key] = state
        return worst

    def _provider_status(self, tracked: _TrackedProvider,
                         live: dict, breakers: dict) -> tuple:
        host = self.network.hosts.get(tracked.node)
        if host is not None and not host.up:
            return DOWN, (R_HOST_DOWN,)
        entry = live.get(tracked.name)
        if entry is None:
            return DOWN, (R_LEASE_EXPIRED,)
        tracked.expired = False  # visible again: any expiry mark is stale
        reasons = []
        _item, remaining, duration = entry
        if duration > 0 and remaining / duration < self.at_risk_fraction:
            tracked.at_risk += 1
        else:
            tracked.at_risk = 0
        if tracked.at_risk >= self.at_risk_ticks:
            reasons.append(R_LEASE_AT_RISK)
        if breakers.get(tracked.service_id) in ("open", "half_open"):
            reasons.append(R_BREAKER_OPEN)
        failed = self.store.rate(
            f"provider.failed{{provider={tracked.name}}}", self.window)
        if failed > self.error_rate_threshold:
            reasons.append(R_ERROR_RATE)
        return (DEGRADED, tuple(reasons)) if reasons else (UP, ())

    def _node_status(self, node: str, statuses: list) -> tuple:
        host = self.network.hosts.get(node)
        if host is not None and not host.up:
            return DOWN, (R_HOST_DOWN,)
        if statuses and all(status == DOWN for status in statuses):
            # Every lease the node held lapsed: from the federation's point
            # of view the node is gone, whatever its host flag says.
            return DOWN, (R_PROVIDERS_DOWN,)
        reasons = []
        if any(status != UP for status in statuses):
            reasons.append(R_PROVIDERS_DEGRADED)
        if self.store.rate(f"rpc.timeouts{{host={node}}}", self.window) > 0:
            reasons.append(R_RPC_TIMEOUTS)
        return (DEGRADED, tuple(reasons)) if reasons else (UP, ())

    def _federation_status(self, statuses: list) -> tuple:
        if statuses and all(status == DOWN for status in statuses):
            return DOWN, (R_NODES_DOWN,)
        reasons = []
        if any(status == DOWN for status in statuses):
            reasons.append(R_NODES_DOWN)
        elif any(status == DEGRADED for status in statuses):
            reasons.append(R_NODES_DEGRADED)
        if (self.store.sum_rate("resilience.deadline_exceeded", self.window)
                > self.deadline_rate_threshold):
            reasons.append(R_DEADLINE_MISSES)
        if (self.store.sum_rate("exertion.failures", self.window)
                > self.error_rate_threshold):
            reasons.append(R_EXERTION_ERRORS)
        shortfall = sum(
            self.store.value(key) or 0.0
            for key in self.store.names("monitor.shortfall"))
        if shortfall > 0:
            reasons.append(R_PROVISION_SHORTFALL)
        return (DEGRADED, tuple(reasons)) if reasons else (UP, ())

    # -- evaluation -----------------------------------------------------------

    def _set_status(self, now: float, entity: str, status: str,
                    reasons: tuple) -> None:
        previous = self._status.get(entity)
        if previous == status:
            return  # the status gauge already holds this value
        self.transitions.append({
            "t": now, "entity": entity,
            "from": previous or "UNKNOWN", "to": status,
            "reasons": list(reasons)})
        self._m_transitions.inc()
        self._status[entity] = status
        gauge = self._status_gauges.get(entity)
        if gauge is None:
            gauge = self.registry.gauge("health.status", entity=entity)
            self._status_gauges[entity] = gauge
        gauge.set(STATUS_VALUE[status])

    def evaluate(self, now: float) -> dict:
        """Re-derive every entity's status; returns the full snapshot."""
        live = self._live_registrations()
        breakers = self._breaker_states()
        # A name that just turned ambiguous retires its plain-keyed entity
        # (its qualified successors take over; no phantom DOWN).
        for stale in [key for key in self._providers
                      if "@" not in key and key in self._ambiguous]:
            del self._providers[stale]
            self._status.pop(f"provider:{stale}", None)
        for key, (item, _remaining, _duration) in live.items():
            tracked = self._providers.get(key)
            if tracked is None:
                tracked = _TrackedProvider(key, item.service.host,
                                           self._kind_of(item),
                                           item.service_id)
                self._providers[key] = tracked
            else:  # a replacement instance may live elsewhere now
                tracked.node = item.service.host
                tracked.service_id = item.service_id

        # Per-tick state is deliberately lean — tuples, not the snapshot's
        # rich dicts (those are assembled on demand in snapshot(); building
        # them every simulated second was measurable management overhead).
        providers: dict[str, tuple] = {}
        by_node: dict[str, list] = {}
        for name in sorted(self._providers):
            tracked = self._providers[name]
            status, reasons = self._provider_status(tracked, live, breakers)
            entry = live.get(name)
            providers[name] = (status, reasons, tracked.node, tracked.kind,
                               entry[1] if entry is not None else None)
            by_node.setdefault(tracked.node, []).append(status)
            self._set_status(now, f"provider:{name}", status, reasons)

        lus_nodes = {lus.host.name for lus in self._all_luses()}
        nodes: dict[str, tuple] = {}
        for node in sorted(set(by_node) | lus_nodes):
            status, reasons = self._node_status(node, by_node.get(node, []))
            nodes[node] = (status, reasons)
            self._set_status(now, f"node:{node}", status, reasons)

        status, reasons = self._federation_status(
            [state for state, _reasons in nodes.values()])
        self._set_status(now, "federation", status, reasons)

        self._last = {"t": now, "federation": (status, reasons),
                      "nodes": nodes, "providers": providers}
        return self._last

    def status_of(self, entity: str) -> str:
        """Last derived status of ``entity`` (``provider:Name``,
        ``node:host`` or ``federation``); UNKNOWN before first evaluation."""
        return self._status.get(entity, "UNKNOWN")

    def snapshot(self) -> dict:
        """The rich, JSON-ready view of the last evaluation."""
        if self._last is None:
            return {
                "t": None, "federation": {"status": "UNKNOWN", "reasons": [],
                                          "nodes": 0, "providers": 0,
                                          "down": 0, "degraded": 0},
                "nodes": {}, "providers": {}}
        last = self._last
        providers = {
            name: {
                "status": status, "reasons": list(reasons),
                "node": node, "kind": kind,
                "lease_remaining": (round(remaining, 3)
                                    if remaining is not None else None),
            }
            for name, (status, reasons, node, kind, remaining)
            in last["providers"].items()}
        nodes = {
            node: {
                "status": status, "reasons": list(reasons),
                "providers": sorted(
                    name for name, record in providers.items()
                    if record["node"] == node),
            }
            for node, (status, reasons) in last["nodes"].items()}
        fed_status, fed_reasons = last["federation"]
        counts = [record["status"] for record in providers.values()]
        federation = {
            "status": fed_status, "reasons": list(fed_reasons),
            "nodes": len(nodes), "providers": len(providers),
            "down": sum(1 for s in counts if s == DOWN),
            "degraded": sum(1 for s in counts if s == DEGRADED),
        }
        return {"t": last["t"], "federation": federation, "nodes": nodes,
                "providers": providers}


#: Scheduler stats republished as registry instruments each beat.
#: Monotone operation totals become counters (windowed delta/rate in the
#: rollups and the spilled history); level signals become gauges. They are
#: kernel- and tie-break-variant, so they feed dashboards, ``repro trace
#: --metrics`` and the history spill — never ``status --json`` or chaos
#: verdicts (DESIGN §12).
_KERNEL_COUNTERS = ("pushes", "pops", "cancels", "resizes", "grows",
                    "shrinks", "heals", "sparse_laps")
_KERNEL_GAUGES = ("pending", "occupancy_hw", "nbuckets")


class HealthMonitor:
    """The per-network driver: model + store + SLO engine on one clock."""

    def __init__(self, network, interval: float = 1.0, retention: int = 120):
        self.network = network
        self.env = network.env
        self.interval = float(interval)
        self.store = TimeSeriesStore(metrics_registry(network),
                                     interval=self.interval,
                                     retention=retention)
        self.model = HealthModel(network, self.store)
        self.engine = SloEngine(self.store)
        #: name -> (instrument, is_counter); resolved lazily because the
        #: heap scheduler exposes fewer stats than the calendar queue.
        self._kernel_instruments: dict[str, tuple] = {}
        #: Rollups run unless disabled (overhead ablations flip this off).
        self.enabled = True
        from ..resilience.events import resilience_events
        resilience_events(network).subscribe(self._on_event)
        self.env.process(self._loop(), name="health-monitor")
        from ..snapshot.registry import register_participant
        register_participant(self.env, "health", self.snapshot)

    def _on_event(self, kind: str, fields: dict) -> None:
        self.model.on_event(kind, fields)

    def _loop(self):
        from ..sim import LOW
        while True:
            # LOW priority: the management plane observes an instant only
            # after the data plane settles it. Without this the beat races
            # same-timestamp peers (the lease sweeper also runs on integer
            # seconds) and tie-break shuffling flips which tick first sees
            # an expiry — a one-window wobble in transition timestamps.
            yield self.env.timeout(self.interval, priority=LOW)
            if not self.enabled:
                continue
            self.tick(self.env.now)

    def tick(self, now: float) -> None:
        """One management-plane beat: derive health, publish kernel stats,
        roll windows, judge SLOs. Public so tests can step the plane
        without the clock."""
        self.model.evaluate(now)
        self._publish_kernel_stats()
        self.store.collect(now)
        self.engine.evaluate(now)

    def _publish_kernel_stats(self) -> None:
        """Mirror the scheduler's internals into ``kernel.scheduler.*``
        instruments so they roll into windows and the spilled history."""
        stats = self.env.scheduler_stats()
        instruments = self._kernel_instruments
        if not instruments:
            registry = self.store.registry
            for name in _KERNEL_COUNTERS:
                if name in stats:
                    instruments[name] = (
                        registry.counter(f"kernel.scheduler.{name}"), True)
            for name in _KERNEL_GAUGES:
                if name in stats:
                    instruments[name] = (
                        registry.gauge(f"kernel.scheduler.{name}"), False)
        for name, (instrument, is_counter) in instruments.items():
            value = stats[name]
            if is_counter:
                if value > instrument.value:
                    instrument.inc(value - instrument.value)
            else:
                instrument.set(value)

    def snapshot(self) -> dict:
        """The full operator view (plain data, JSON-serializable)."""
        out = dict(self.model.snapshot())
        out.update(self.engine.snapshot())
        out["transitions"] = list(self.model.transitions)
        return out


def default_slos() -> list:
    """The stock rule set a SenSORCER deployment starts with.

    ``federation-health`` alerts on the *derived* status gauge, so any
    condition severe enough to take the federation DOWN pages within one
    evaluation window of the health model seeing it (lease expiry of the
    last provider on a node, every node dark, ...). The rate rules watch
    the raw failure signals with a two-window hysteresis.
    """
    return [
        Slo("federation-health", "health.status{entity=federation}", 1.0,
            kind="value", window=1, for_windows=1, clear_windows=2,
            description="federation must not be DOWN"),
        Slo("exertion-failure-rate", "exertion.failures", 0.5,
            sum_prefix=True, window=3, for_windows=2, clear_windows=2,
            description="network-wide exertion failures per second"),
        Slo("deadline-miss-rate", "resilience.deadline_exceeded", 0.5,
            sum_prefix=True, window=3, for_windows=2, clear_windows=2,
            description="exertions blowing their deadline budget"),
        Slo("rpc-timeout-rate", "rpc.timeouts", 1.0,
            sum_prefix=True, window=3, for_windows=2, clear_windows=2,
            description="network-wide RPC timeouts per second"),
    ]


def overload_slos(shed_rate: float = 5.0) -> list:
    """SLOs for labs running an overload-control plane (installed by the
    load scenario, *not* part of :func:`default_slos` — a lab without
    admission control has no shed signal to watch).

    Shedding is the control plane working as designed; *sustained*
    shedding above ``shed_rate``/s means offered load persistently exceeds
    provisioned capacity and someone should add capacity or fix a tenant.
    """
    return [
        Slo("overload-shed-rate", "overload.rejected", shed_rate,
            sum_prefix=True, window=3, for_windows=2, clear_windows=2,
            description="requests shed by admission control per second"),
    ]


def health_monitor(network, interval: float = 1.0) -> HealthMonitor:
    """The network's shared health monitor (created on first use)."""
    monitor = getattr(network, "_health_monitor", None)
    if monitor is None:
        monitor = HealthMonitor(network, interval=interval)
        network._health_monitor = monitor
    return monitor
