"""Persistent telemetry history — sqlite spill for windows and profiles.

A :class:`~repro.observability.timeseries.TimeSeriesStore` is a bounded
in-memory ring: telemetry from a million-event soak run dies with the
process, and the rings themselves only keep the last ``retention``
windows. :class:`HistoryStore` is the durable side — the dsaf manager
node's "Grafana-like" history view (ROADMAP item 5): sealed windows and
flight-recorder profiles spill to one append-only sqlite file, and
``repro history`` queries past runs long after the simulation exited.

Schema (``user_version`` = 1, byte-stable — columns are only ever added
behind a version bump):

* ``runs``      — one row per recorded run: id, scenario, seed, scheduler
  kind, final sim time / event count, finished flag, free-form JSON meta.
  No wall-clock timestamps by default: two identical runs write identical
  rows, which keeps ``repro history --json`` golden-testable.
* ``windows``   — the spilled rollups, one row per
  :class:`~repro.observability.timeseries.Window`: (run, metric key,
  window end t, kind, value/delta/rate/count/p50/p95/max).
* ``profile``   — the flight recorder's attribution table (event type,
  target, count, wall seconds, share) per run.
* ``throughput`` — the recorder's rolling events/sec samples per run.

Spilling is **incremental and watermarked**: :meth:`spill_windows` writes
only windows newer than the per-(run, key) high-water mark, so calling it
every N simulated seconds or once at the end produces the *same* final
database (provided the spill period does not exceed the ring's retention
horizon). Profile spills replace the run's previous profile rows, so
repeated spills converge to the final report rather than duplicating it.

Reads are ordering-stable by construction — every query ends in
``ORDER BY`` over (key, t, rowid) — and values round-trip exactly
(sqlite REAL is the same IEEE-754 double Python floats are).

This module never touches simulation state; it is wall-side plumbing fed
by sim-side data, and it reads no wall clock at all (run identity and
timestamps, when wanted, come from the caller).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Optional

from .timeseries import TimeSeriesStore, Window

__all__ = ["HistoryStore", "SCHEMA_VERSION"]

SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id    TEXT PRIMARY KEY,
    scenario  TEXT NOT NULL,
    seed      INTEGER NOT NULL,
    scheduler TEXT NOT NULL,
    sim_end   REAL,
    events    INTEGER,
    finished  INTEGER NOT NULL DEFAULT 0,
    meta      TEXT NOT NULL DEFAULT '{}',
    restored_from TEXT
);
CREATE TABLE IF NOT EXISTS windows (
    run_id TEXT NOT NULL,
    key    TEXT NOT NULL,
    t      REAL NOT NULL,
    kind   TEXT NOT NULL,
    value  REAL,
    delta  REAL,
    rate   REAL,
    count  INTEGER,
    p50    REAL,
    p95    REAL,
    max    REAL
);
CREATE INDEX IF NOT EXISTS windows_run_key_t
    ON windows (run_id, key, t);
CREATE TABLE IF NOT EXISTS profile (
    run_id     TEXT NOT NULL,
    event_type TEXT NOT NULL,
    target     TEXT NOT NULL,
    count      INTEGER NOT NULL,
    wall_s     REAL NOT NULL,
    share      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS profile_run ON profile (run_id);
CREATE TABLE IF NOT EXISTS throughput (
    run_id TEXT NOT NULL,
    wall_s REAL NOT NULL,
    sim_t  REAL NOT NULL,
    events INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS throughput_run ON throughput (run_id);
"""

_WINDOW_FIELDS = ("value", "delta", "rate", "count", "p50", "p95", "max")


class HistoryStore:
    """Append-only sqlite history of runs, windows and profiles.

    ``path`` may be a filesystem path or ``":memory:"`` (tests). The
    store is usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            self._conn.commit()
        elif version == 1:
            # v1 -> v2: runs grew the restored_from marker (NULL for every
            # pre-existing row — no v1 run was a snapshot restore).
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN restored_from TEXT")
            self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            self._conn.commit()
        elif version != SCHEMA_VERSION:
            self._conn.close()
            raise ValueError(
                f"{self.path}: history schema v{version}, "
                f"this build reads v{SCHEMA_VERSION}")
        #: (run_id, key) -> newest spilled window t; lazily seeded from the
        #: database so a reopened store keeps spilling incrementally.
        self._watermarks: dict[tuple, float] = {}

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    # -- writing ---------------------------------------------------------------

    def begin_run(self, run_id: str, scenario: str, seed: int,
                  scheduler: str, meta: Optional[dict] = None,
                  replace: bool = False,
                  restored_from: Optional[str] = None) -> None:
        """Register a run. ``run_id`` must be new unless ``replace`` is
        set, in which case the previous run's rows are dropped first —
        the one deliberate exception to append-only, for re-recording a
        scenario under the same name.

        ``restored_from`` marks a run resumed from a snapshot file: the
        snapshot's body digest (``repro restore --spill`` records it), so
        history queries can tell resumed runs from uninterrupted ones."""
        existing = self._conn.execute(
            "SELECT 1 FROM runs WHERE run_id=?", (run_id,)).fetchone()
        if existing:
            if not replace:
                raise ValueError(f"run {run_id!r} already recorded "
                                 "(pass replace=True to overwrite)")
            self.delete_run(run_id)
        self._conn.execute(
            "INSERT INTO runs (run_id, scenario, seed, scheduler, meta, "
            "restored_from) VALUES (?,?,?,?,?,?)",
            (run_id, scenario, int(seed), scheduler,
             json.dumps(meta or {}, sort_keys=True), restored_from))
        self._conn.commit()

    def spill_windows(self, run_id: str, store: TimeSeriesStore,
                      prefix: str = "") -> int:
        """Append every not-yet-spilled window; returns the row count.

        Watermarked per (run, key): only windows strictly newer than the
        last spilled ``t`` are written, so periodic and one-shot spilling
        produce the same database.
        """
        rows = []
        for key in store.names(prefix):
            mark = self._watermark(run_id, key)
            for window in store.series(key):
                if mark is not None and window.t <= mark:
                    continue
                rows.append((run_id, key, window.t, window.kind,
                             window.value, window.delta, window.rate,
                             window.count, window.p50, window.p95,
                             window.max))
            if rows and rows[-1][1] == key:
                self._watermarks[(run_id, key)] = rows[-1][2]
        if rows:
            self._conn.executemany(
                "INSERT INTO windows VALUES (?,?,?,?,?,?,?,?,?,?,?)", rows)
            self._conn.commit()
        return len(rows)

    def _watermark(self, run_id: str, key: str) -> Optional[float]:
        pair = (run_id, key)
        mark = self._watermarks.get(pair)
        if mark is None and pair not in self._watermarks:
            row = self._conn.execute(
                "SELECT MAX(t) FROM windows WHERE run_id=? AND key=?",
                pair).fetchone()
            mark = row[0]
            self._watermarks[pair] = mark
        return mark

    def spill_profile(self, run_id: str, report: dict) -> None:
        """Store a flight-recorder report's attribution + throughput.

        Replaces any previous profile rows for the run: the recorder
        aggregates cumulatively, so the latest report supersedes earlier
        spills rather than adding to them.
        """
        self._conn.execute("DELETE FROM profile WHERE run_id=?", (run_id,))
        self._conn.execute("DELETE FROM throughput WHERE run_id=?", (run_id,))
        self._conn.executemany(
            "INSERT INTO profile VALUES (?,?,?,?,?,?)",
            [(run_id, row["event_type"], row["target"], row["count"],
              row["wall_s"], row["share"])
             for row in report.get("attribution", ())])
        self._conn.executemany(
            "INSERT INTO throughput VALUES (?,?,?,?)",
            [(run_id, row["wall_s"], row["sim_t"], row["events"])
             for row in report.get("throughput", ())])
        self._conn.commit()

    def finish_run(self, run_id: str, sim_end: float, events: int,
                   meta: Optional[dict] = None) -> None:
        """Seal the run row (final sim time, event count, merged meta)."""
        if meta:
            row = self._conn.execute(
                "SELECT meta FROM runs WHERE run_id=?", (run_id,)).fetchone()
            merged = json.loads(row[0]) if row else {}
            merged.update(meta)
            self._conn.execute(
                "UPDATE runs SET sim_end=?, events=?, finished=1, meta=? "
                "WHERE run_id=?",
                (float(sim_end), int(events),
                 json.dumps(merged, sort_keys=True), run_id))
        else:
            self._conn.execute(
                "UPDATE runs SET sim_end=?, events=?, finished=1 "
                "WHERE run_id=?",
                (float(sim_end), int(events), run_id))
        self._conn.commit()

    def delete_run(self, run_id: str) -> None:
        for table in ("windows", "profile", "throughput", "runs"):
            self._conn.execute(
                f"DELETE FROM {table} WHERE run_id=?", (run_id,))
        self._watermarks = {k: v for k, v in self._watermarks.items()
                            if k[0] != run_id}
        self._conn.commit()

    # -- reading ---------------------------------------------------------------

    def runs(self) -> list[dict]:
        """Every recorded run, sorted by run id."""
        out = []
        for row in self._conn.execute(
                "SELECT run_id, scenario, seed, scheduler, sim_end, events,"
                " finished, meta, restored_from FROM runs ORDER BY run_id"):
            out.append({
                "run_id": row[0], "scenario": row[1], "seed": row[2],
                "scheduler": row[3], "sim_end": row[4], "events": row[5],
                "finished": bool(row[6]), "meta": json.loads(row[7]),
                "restored_from": row[8],
            })
        return out

    def run(self, run_id: str) -> Optional[dict]:
        for entry in self.runs():
            if entry["run_id"] == run_id:
                return entry
        return None

    def keys(self, run_id: str, prefix: str = "") -> list[str]:
        """Metric keys with spilled windows for a run, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT key FROM windows WHERE run_id=? "
            "AND key LIKE ? ORDER BY key", (run_id, prefix + "%"))
        return [r[0] for r in rows]

    def series(self, run_id: str, key: str,
               since: Optional[float] = None,
               until: Optional[float] = None,
               limit: Optional[int] = None) -> list[dict]:
        """A metric's spilled windows in (t, insertion) order, as the same
        sparse dicts :meth:`Window.to_dict` produces. ``limit`` keeps the
        *newest* windows (tail of the series)."""
        sql = ("SELECT t, kind, value, delta, rate, count, p50, p95, max "
               "FROM windows WHERE run_id=? AND key=?")
        params: list = [run_id, key]
        if since is not None:
            sql += " AND t>=?"
            params.append(float(since))
        if until is not None:
            sql += " AND t<=?"
            params.append(float(until))
        sql += " ORDER BY t, rowid"
        rows = self._conn.execute(sql, params).fetchall()
        if limit is not None and len(rows) > limit:
            rows = rows[-limit:]
        out = []
        for row in rows:
            entry = {"t": row[0], "kind": row[1]}
            for field, value in zip(_WINDOW_FIELDS, row[2:]):
                if value is not None:
                    entry[field] = value
            out.append(entry)
        return out

    def windows(self, run_id: str, key: str, **kwargs) -> list[Window]:
        """:meth:`series` rehydrated into :class:`Window` objects."""
        return [Window(d.pop("t"), d.pop("kind"), **d)
                for d in self.series(run_id, key, **kwargs)]

    def stats(self, run_id: str, key: str,
              since: Optional[float] = None,
              until: Optional[float] = None) -> dict:
        """Aggregate a metric over any horizon of its spilled windows.

        Mirrors the in-memory store's conventions: the per-second ``rate``
        averages deltas over the horizon span, ``p50``/``p95`` report the
        worst (largest) per-window quantile — windows roll independently,
        so exact cross-window quantiles are unavailable and worst-window
        is what an alert would act on.
        """
        rows = self.series(run_id, key, since=since, until=until)
        if not rows:
            return {"windows": 0}
        deltas = [r["delta"] for r in rows if r.get("delta") is not None]
        stats = {
            "windows": len(rows),
            "first_t": rows[0]["t"],
            "last_t": rows[-1]["t"],
            "kind": rows[0]["kind"],
        }
        if deltas:
            stats["delta"] = sum(deltas)
            span = rows[-1]["t"] - rows[0]["t"]
            if span > 0:
                stats["rate"] = round(stats["delta"] / span, 6)
        for field in ("p50", "p95", "max"):
            values = [r[field] for r in rows if r.get(field) is not None]
            if values:
                stats[field] = max(values)
        values = [r["value"] for r in rows if r.get("value") is not None]
        if values:
            stats["last_value"] = values[-1]
        counts = [r["count"] for r in rows if r.get("count") is not None]
        if counts:
            stats["count"] = sum(counts)
        return stats

    def profile(self, run_id: str) -> list[dict]:
        """The run's spilled attribution table, hottest rows first."""
        rows = self._conn.execute(
            "SELECT event_type, target, count, wall_s, share FROM profile "
            "WHERE run_id=? ORDER BY wall_s DESC, event_type, target",
            (run_id,))
        return [{"event_type": r[0], "target": r[1], "count": r[2],
                 "wall_s": r[3], "share": r[4]} for r in rows]

    def throughput(self, run_id: str) -> list[dict]:
        """The run's rolling events/sec samples in recording order."""
        rows = self._conn.execute(
            "SELECT wall_s, sim_t, events FROM throughput "
            "WHERE run_id=? ORDER BY events, rowid", (run_id,))
        return [{"wall_s": r[0], "sim_t": r[1], "events": r[2]}
                for r in rows]
