"""Sensor Browser — the zero-install service UI (§V.B, Fig 2/3).

The browser follows MVC: the *model* is the network configuration data
fetched through the façade; *views* render it (here: text panes mirroring
the Inca X screenshots — service list, sensor-service information, sensor
values); the *controller* issues façade requests. It is deliberately thin:
"the service UI just takes the input from the user and gives back result
from the SenSORCER network" (§VII).
"""

from __future__ import annotations

from typing import Optional

from ..jini.template import ServiceTemplate
from ..net.host import Host
from ..overload import Overloaded, rejection_marker
from ..sim import Interrupt
from ..sorcer.accessor import ServiceAccessor
from ..sorcer.context import ServiceContext
from ..sorcer.exerter import Exerter
from ..sorcer.exertion import Task
from ..sorcer.signature import Signature
from .interfaces import FACADE

__all__ = ["SensorBrowser", "BrowserError"]


class BrowserError(Exception):
    """The browser could not complete a request."""


class SensorBrowser:
    """User agent attached to a SenSORCER façade."""

    def __init__(self, host: Host, facade_name: Optional[str] = None):
        self.host = host
        self.env = host.env
        self.exerter = Exerter(host)
        self.accessor: ServiceAccessor = self.exerter.accessor
        self.facade_name = facade_name
        #: The MVC model: refreshed by controller actions.
        self.model: dict = {"sensors": [], "values": {}, "info": None,
                            "topology": {"nodes": [], "edges": []},
                            "entries": None}

    # -- controller -----------------------------------------------------------------

    def _facade_call(self, selector: str, args: dict):
        ctx = ServiceContext(f"browser->{selector}")
        for key, value in args.items():
            ctx.put_in_value(f"arg/{key}", value)
        task = Task(f"browser-{selector}",
                    Signature(FACADE, selector,
                              provider_name=self.facade_name), ctx)
        result = yield self.env.process(self.exerter.exert(task))
        if result.is_failed:
            marker = rejection_marker(result.context)
            if marker is not None:
                # Shed, not broken: surface the typed rejection (with its
                # retry-after hint) instead of a generic browser failure.
                raise Overloaded.from_marker(marker)
            raise BrowserError(f"{selector} failed: {result.exceptions}")
        return result.get_return_value()

    def get_sensor_list(self):
        sensors = yield from self._facade_call("listSensors", {})
        self.model["sensors"] = sensors
        return sensors

    def get_value(self, name: str):
        value = yield from self._facade_call("getValue", {"name": name})
        self.model["values"][name] = value
        return value

    def get_values(self, names: list):
        """Batch read: one façade call, concurrent collection."""
        values = yield from self._facade_call("getValues", {"names": names})
        self.model["values"].update(values)
        return values

    def get_all_values(self):
        """Refresh the 'Sensor Value' pane for every known sensor."""
        if not self.model["sensors"]:
            yield from self.get_sensor_list()
        names = [sensor["name"] for sensor in self.model["sensors"]]
        values = yield from self.get_values(names)
        return dict(values)

    def get_info(self, name: str):
        info = yield from self._facade_call("getSensorInfo", {"name": name})
        self.model["info"] = info
        return info

    def get_stats(self, name: str, window=None):
        args = {"name": name}
        if window is not None:
            args["window"] = window
        stats = yield from self._facade_call("getSensorStats", args)
        return stats

    def compose_service(self, composite: str, children: list):
        assigned = yield from self._facade_call(
            "composeService", {"composite": composite, "children": children})
        return assigned

    def decompose_service(self, composite: str, child: str):
        result = yield from self._facade_call(
            "decomposeService", {"composite": composite, "child": child})
        return result

    def add_expression(self, name: str, expression: str):
        result = yield from self._facade_call(
            "addExpression", {"name": name, "expression": expression})
        return result

    def create_service(self, name: str):
        created = yield from self._facade_call("createService", {"name": name})
        return created

    def watch(self, names: list, interval: float = 5.0, rounds: int = 6):
        """Sample the named services periodically; returns and stores the
        time series (generator)."""
        series = {name: [] for name in names}
        for _ in range(rounds):
            values = yield from self.get_values(names)
            for name in names:
                series[name].append((self.env.now, values.get(name)))
            yield self.env.timeout(interval)
        self.model["watch"] = series
        return series

    def render_watch_pane(self) -> str:
        """Time-series pane: one row per sample, one column per service."""
        series = self.model.get("watch")
        if not series:
            return "Watch\n(no watch data)"
        names = sorted(series)
        lines = ["Watch", "=" * 40,
                 "t (s)      " + "  ".join(f"{n:>18}" for n in names)]
        length = max(len(points) for points in series.values())
        for row in range(length):
            cells = []
            stamp = None
            for name in names:
                points = series[name]
                if row < len(points):
                    stamp, value = points[row]
                    cells.append(f"{value:18.3f}" if isinstance(value, float)
                                 else f"{'-':>18}")
                else:
                    cells.append(f"{'-':>18}")
            lines.append(f"{stamp:9.1f}  " + "  ".join(cells))
        return "\n".join(lines)

    def registry_admin(self):
        """Fetch the raw registration table from every known registrar
        (the Fig 2 Admin tab)."""
        out = {}
        # Registrar discovery order is deterministic (insertion-ordered dict).
        for lus_id, ref in list(  # repro: allow[DET003]
                self.accessor.discovery.registrars.items()):
            try:
                rows = yield self.exerter._endpoint.call(
                    ref, "registrations", kind="lus-admin", timeout=3.0)
            except Interrupt:
                raise
            except Exception:
                continue
            out[lus_id] = rows
        self.model["admin"] = out
        return out

    def render_admin_pane(self) -> str:
        admin = self.model.get("admin")
        if not admin:
            return "Admin\n(no registrar data)"
        lines = ["Admin — registrations", "=" * 60]
        for lus_id, rows in admin.items():
            lines.append(f"registrar {lus_id[:13]}...")
            for row in sorted(rows, key=lambda r: r["name"] or ""):
                remaining = row["lease_remaining"]
                lease = f"{remaining:6.1f}s" if remaining is not None else "   ?  "
                lines.append(f"  {row['name']:<26} {row['host']:<16} "
                             f"lease {lease}")
        return "\n".join(lines)

    def save_network_plan(self):
        plan = yield from self._facade_call("saveNetworkPlan", {})
        return plan

    def apply_network_plan(self, plan):
        actions = yield from self._facade_call("applyNetworkPlan",
                                               {"plan": plan})
        return actions

    def enable_self_healing(self, plan, interval: float = 5.0):
        result = yield from self._facade_call(
            "enableSelfHealing", {"plan": plan, "interval": interval})
        return result

    def disable_self_healing(self):
        result = yield from self._facade_call("disableSelfHealing", {})
        return result

    def get_attributes(self, name: str):
        """Fetch a service's attribute entries (the Fig 2 'Entry Value'
        pane) straight from the lookup service."""
        from ..jini.entries import Name as NameEntry
        item = yield from self.accessor.find_one(
            ServiceTemplate(attributes=(NameEntry(name),)), wait=3.0)
        if item is None:
            raise BrowserError(f"no service named {name!r} on the network")
        self.model["entries"] = (name, item.service_id, item.attributes)
        return item.attributes

    def refresh_topology(self):
        snapshot = yield from self._facade_call("networkSnapshot", {})
        self.model["topology"] = snapshot
        return snapshot

    def get_health(self):
        """Fetch the management plane's health snapshot via the façade."""
        snapshot = yield from self._facade_call("networkHealth", {})
        self.model["health"] = snapshot
        return snapshot

    def subscribe_health_alerts(self, listener):
        """Route SLO alert edges to ``listener`` (a RemoteRef with a
        ``notify`` method — hand it a mailbox slot to read them later)."""
        result = yield from self._facade_call("subscribeHealthAlerts",
                                              {"listener": listener})
        return result

    # -- views ------------------------------------------------------------------------

    def render_service_list(self) -> str:
        """The left-hand services pane of Fig 2."""
        lines = ["Sensor Services", "=" * 40]
        for sensor in self.model["sensors"]:
            lines.append(f"  {sensor['name']:<24} [{sensor['service_type']}]")
        if not self.model["sensors"]:
            lines.append("  (no sensor services discovered)")
        return "\n".join(lines)

    def render_info_pane(self) -> str:
        """The 'Sensor Service Information' pane of Fig 2/3."""
        info = self.model.get("info")
        if not info:
            return "Sensor Service Information\n(no service selected)"
        lines = [
            "Sensor Service Information",
            "=" * 40,
            f"Sensor Name:: {info['name']}",
            f"Service Type:: {info['service_type']}",
            f"Service ID:: {info['service_id']}",
            "Contained Services: " + ", ".join(info.get("contained_services") or []),
            f"Compute Expression: {info.get('expression') or ''}",
        ]
        return "\n".join(lines)

    def render_values_pane(self) -> str:
        """The 'Sensor Value' pane of Fig 3."""
        lines = ["Sensor Value", "=" * 40]
        for name in sorted(self.model["values"]):
            value = self.model["values"][name]
            rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<24} {rendered}")
        if not self.model["values"]:
            lines.append("  (no values read)")
        return "\n".join(lines)

    def render_entries_pane(self) -> str:
        """Attribute entries, rendered like Fig 2's 'Entry / Value' table
        (``Location.floor   3`` and so on)."""
        if not self.model.get("entries"):
            return "Entry Value\n(no service selected)"
        name, service_id, attributes = self.model["entries"]
        lines = [f"Entry Value — {name} ({service_id[:13]}...)", "=" * 40]
        import dataclasses
        for entry in attributes:
            entry_name = type(entry).__name__
            for field in dataclasses.fields(entry):
                value = getattr(entry, field.name)
                if value is not None:
                    lines.append(f"  {entry_name}.{field.name:<14} {value}")
        if len(lines) == 2:
            lines.append("  (no attributes)")
        return "\n".join(lines)

    def render_health_pane(self) -> str:
        """Network health pane: the ``repro status`` tree, browser-side."""
        snapshot = self.model.get("health")
        if not snapshot:
            return "Network Health\n(no health snapshot)"
        from ..observability.status import render_status
        return render_status(snapshot, title="Network Health")

    def render_topology(self) -> str:
        """Logical sensor network tree (Fig 3's composition view)."""
        topo = self.model["topology"]
        names = {n["service_id"]: n["name"] for n in topo["nodes"]}
        children: dict = {}
        contained = set()
        for edge in topo["edges"]:
            children.setdefault(edge["parent"], []).append(edge["child"])
            contained.add(edge["child"])
        lines = ["Logical Sensor Network", "=" * 40]

        def walk(node_id: str, depth: int) -> None:
            lines.append("  " * depth + f"- {names.get(node_id, node_id)}")
            for child in sorted(children.get(node_id, []),
                                key=lambda c: names.get(c, c)):
                walk(child, depth + 1)

        roots = [n["service_id"] for n in topo["nodes"]
                 if n["service_id"] not in contained]
        for root in sorted(roots, key=lambda r: names.get(r, r)):
            walk(root, 0)
        if not topo["nodes"]:
            lines.append("  (empty)")
        return "\n".join(lines)
