"""Composition plans — the declarative state of the logical sensor network.

Rio heals a crashed composite by instantiating a *fresh* provider with the
same name — but a fresh CSP is empty: its children and compute-expression
were in-memory state. A :class:`CompositionPlan` captures that state as
data ("Field-1 contains these sensors with this expression"), so the
façade can re-apply it — on demand or automatically (self-healing). This
completes the §V.B promise that "the semantics of network management in
SenSORCER is reduced to the management of a single CSP": the management
state itself survives the CSP.

Entries are ordered leaves-first so nested composites re-form bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PlanEntry", "CompositionPlan"]


@dataclass(frozen=True)
class PlanEntry:
    """Desired state of one composite."""

    composite: str
    children: tuple        # child service names, composition order
    expression: Optional[str] = None


@dataclass
class CompositionPlan:
    """Ordered desired state of every composite in the logical network."""

    entries: list = field(default_factory=list)

    def add(self, composite: str, children, expression=None) -> "CompositionPlan":
        if any(e.composite == composite for e in self.entries):
            raise ValueError(f"plan already has an entry for {composite!r}")
        self.entries.append(PlanEntry(composite=composite,
                                      children=tuple(children),
                                      expression=expression))
        return self

    def entry_for(self, composite: str) -> Optional[PlanEntry]:
        for entry in self.entries:
            if entry.composite == composite:
                return entry
        return None

    def composites(self) -> list:
        return [entry.composite for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
