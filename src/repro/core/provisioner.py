"""Sensor service provisioner — SenSORCER's bridge to Rio (§V.B).

"A Sensor Service Provisioner provides for provisioning of sensor services
based on quality of service specified by requestors according to the Rio
framework": given a name and QoS, build an operational string around a
composite-provider factory, hand it to the provision monitor and wait until
the new service is discoverable (the paper's §VI step 3, provisioning
'New-Composite' onto the network).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..jini.entries import Name
from ..jini.template import ServiceTemplate
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..rio.opstring import OperationalString, ServiceElement
from ..rio.qos import QosRequirement
from ..sorcer.accessor import ServiceAccessor
from .csp import CompositeSensorProvider
from .interfaces import SENSOR_DATA_ACCESSOR

__all__ = ["SensorServiceProvisioner", "ProvisionError", "composite_factory"]

MONITOR_TYPE = "ProvisionMonitor"


class ProvisionError(Exception):
    """Provisioning could not complete (no monitor, no capacity, timeout)."""


def composite_factory(host: Host, instance_name: str, attributes: tuple):
    """Default factory: a fresh CSP on the target cybernode's host."""
    return CompositeSensorProvider(host, instance_name, attributes=attributes,
                                   lease_duration=10.0)


class SensorServiceProvisioner:
    """Requestor-side provisioning helper used by the façade."""

    def __init__(self, host: Host, accessor: Optional[ServiceAccessor] = None,
                 default_qos: Optional[QosRequirement] = None,
                 visibility_timeout: float = 20.0):
        self.host = host
        self.env = host.env
        self.accessor = accessor if accessor is not None else ServiceAccessor(host)
        self.default_qos = (default_qos if default_qos is not None
                            else QosRequirement(load=1.0, memory_mb=64.0))
        self.visibility_timeout = visibility_timeout
        self._endpoint = rpc_endpoint(host)

    def provision_sensor_service(self, name: str,
                                 factory: Callable = composite_factory,
                                 qos: Optional[QosRequirement] = None):
        """Deploy one instance of ``factory`` under ``name``; a generator
        returning the new service's :class:`ServiceItem`."""
        monitor_item = yield from self.accessor.find_one(
            ServiceTemplate.by_type(MONITOR_TYPE), wait=5.0)
        if monitor_item is None:
            raise ProvisionError("no provision monitor on the network")
        element = ServiceElement(
            name=name, factory=factory, planned=1,
            qos=qos if qos is not None else self.default_qos)
        opstring = OperationalString(f"sensorcer-{name}", [element])
        yield self._endpoint.call(monitor_item.service, "deploy", opstring,
                                  kind="provision-deploy", timeout=10.0)
        item = yield from self.accessor.find_one(
            ServiceTemplate(types=(SENSOR_DATA_ACCESSOR,),
                            attributes=(Name(name),)),
            wait=self.visibility_timeout)
        if item is None:
            raise ProvisionError(
                f"provisioned service {name!r} did not become visible within "
                f"{self.visibility_timeout}s")
        return item

    def provision_composite(self, name: str,
                            qos: Optional[QosRequirement] = None):
        """Provision a new, empty composite sensor provider (§VI step 3)."""
        item = yield from self.provision_sensor_service(
            name, factory=composite_factory, qos=qos)
        return item
