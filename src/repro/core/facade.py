"""SenSORCER Façade — the single entry point of the system (§V.B).

"The Sensorcer Façade is the single entry point of the SenSORCER system. It
provides a uniform access to the user through the Sensor Browser. The
Façade uses a Sensor Network Manager to provide the CSP network management
functionality ... carried out using Service Accessor and Sensor Service
Provisioner components."

Every UI action of Fig 2/3 maps to one façade operation:

=================  ==========================================================
Browser button     Façade selector (exertion operation)
=================  ==========================================================
Get Sensor List    ``listSensors``
Get Value          ``getValue`` (arg/name)
Compose Service    ``composeService`` (arg/composite, arg/children)
Add Expression     ``addExpression`` (arg/name, arg/expression)
Create Service     ``createService`` (arg/name) — provisions a new CSP
(info pane)        ``getSensorInfo`` (arg/name)
(topology pane)    ``networkSnapshot``
=================  ==========================================================
"""

from __future__ import annotations

from typing import Optional

from ..jini.entries import Name, SensorType
from ..jini.template import ServiceItem, ServiceTemplate
from ..net.host import Host
from ..observability import propagate_trace
from ..overload import Overloaded, rejection_marker
from ..resilience import DEADLINE_PATH, Deadline
from ..sim import Interrupt
from ..sorcer.context import ServiceContext
from ..sorcer.exerter import Exerter
from ..sorcer.exertion import Task
from ..sorcer.provider import ServiceProvider
from ..sorcer.signature import Signature
from .interfaces import (
    FACADE,
    KIND_COMPOSITE,
    KIND_ELEMENTARY,
    OP_ADD_SERVICE,
    OP_GET_INFO,
    OP_GET_STATS,
    OP_GET_VALUE,
    OP_REMOVE_SERVICE,
    OP_SET_EXPRESSION,
    SENSOR_DATA_ACCESSOR,
)
from .interfaces import OP_LIST_SERVICES
from .manager import SensorNetworkManager
from .plan import CompositionPlan, PlanEntry
from .provisioner import ProvisionError, SensorServiceProvisioner

__all__ = ["SensorcerFacade", "FacadeError"]


class FacadeError(Exception):
    """A management request could not be carried out."""


class SensorcerFacade(ServiceProvider):
    """Multiple façades may run; each is a uniform access point."""

    SERVICE_TYPES = (FACADE,)

    def __init__(self, host: Host, name: str = "SenSORCER Facade",
                 provisioner: Optional[SensorServiceProvisioner] = None,
                 **kwargs):
        super().__init__(host, name, **kwargs)
        self.exerter = Exerter(host)
        self.accessor = self.exerter.accessor
        self.manager = SensorNetworkManager()
        self.provisioner = (provisioner if provisioner is not None
                            else SensorServiceProvisioner(host, self.accessor))
        self.add_operation("listSensors", self._op_list_sensors)
        self.add_operation("getValue", self._op_get_value)
        self.add_operation("getValues", self._op_get_values)
        self.add_operation("getSensorInfo", self._op_get_sensor_info)
        self.add_operation("getSensorStats", self._op_get_sensor_stats)
        self.add_operation("composeService", self._op_compose_service)
        self.add_operation("decomposeService", self._op_decompose_service)
        self.add_operation("addExpression", self._op_add_expression)
        self.add_operation("createService", self._op_create_service)
        self.add_operation("networkSnapshot", self._op_network_snapshot)
        self.add_operation("saveNetworkPlan", self._op_save_network_plan)
        self.add_operation("applyNetworkPlan", self._op_apply_network_plan)
        self.add_operation("enableSelfHealing", self._op_enable_self_healing)
        self.add_operation("disableSelfHealing", self._op_disable_self_healing)
        self.add_operation("networkHealth", self._op_network_health)
        self.add_operation("subscribeHealthAlerts",
                           self._op_subscribe_health_alerts)
        self._healing_plan: Optional[CompositionPlan] = None
        self._healing_interval = 5.0
        self._healing_proc = None
        self.healing_actions = 0
        #: Listener refs (e.g. mailbox slots) receiving HealthEvents, and
        #: the per-listener sequence counters Jini events carry.
        self._health_listeners: list = []
        self._health_sequence = 0
        self._alerts_hooked = False

    # -- helpers -----------------------------------------------------------------

    def _find_sensor(self, name: str):
        item = yield from self.accessor.find_one(
            ServiceTemplate(types=(SENSOR_DATA_ACCESSOR,),
                            attributes=(Name(name),)), wait=3.0)
        if item is None:
            raise FacadeError(f"no sensor service named {name!r} on the network")
        return item

    #: Management operations are small; a binding that does not answer
    #: quickly is dead (its lease just hasn't lapsed yet) — keep timeouts
    #: short so control loops (self-healing) stay responsive.
    MGMT_TIMEOUT = 5.0
    #: End-to-end budget per management exertion: covers lookup, retries
    #: and backoff, so a wedged target cannot stall the healing loop for
    #: the compounded sum of its per-attempt timeouts.
    MGMT_BUDGET = 12.0

    def _exert_on(self, item: ServiceItem, selector: str, args: dict,
                  parent_ctx: Optional[ServiceContext] = None):
        ctx = ServiceContext(f"facade->{selector}")
        if parent_ctx is not None:
            # Management hops become children of the facade's serve span;
            # the healing loop passes no context, so its hops root traces.
            propagate_trace(parent_ctx, ctx)
        for key, value in args.items():
            ctx.put_in_value(f"arg/{key}", value)
        task = Task(f"facade-{selector}",
                    Signature(SENSOR_DATA_ACCESSOR, selector,
                              service_id=item.service_id), ctx)
        task.control.invocation_timeout = self.MGMT_TIMEOUT
        task.control.provider_wait = 3.0
        budget = self.MGMT_BUDGET
        if parent_ctx is not None:
            # A caller-supplied deadline caps the management budget: the
            # nested hop must not outlive the request it serves.
            inherited = parent_ctx.get_value(DEADLINE_PATH, None)
            if isinstance(inherited, (int, float)):
                budget = min(budget, max(0.0, float(inherited) - self.env.now))
        task.control.deadline = Deadline.after(self.env.now, budget)
        result = yield self.env.process(self.exerter.exert(task))
        if result.is_failed:
            marker = rejection_marker(result.context)
            if marker is not None:
                # Typed propagation: our own service() wrapper re-marks the
                # facade's result, so the browser sees Overloaded too.
                raise Overloaded.from_marker(marker)
            raise FacadeError(
                f"{selector} on {item.name()!r} failed: {result.exceptions}")
        return result.get_return_value()

    def _kind_of(self, item: ServiceItem) -> str:
        for attr in item.attributes:
            if isinstance(attr, SensorType) and attr.service_kind:
                return attr.service_kind
        return KIND_ELEMENTARY

    def _track(self, item: ServiceItem) -> None:
        self.manager.register_service(item.service_id, item.name() or "?",
                                      self._kind_of(item))

    # -- operations ----------------------------------------------------------------

    def _op_list_sensors(self, ctx):
        items = yield from self.accessor.find_items(
            ServiceTemplate.by_type(SENSOR_DATA_ACCESSOR), max_matches=128)
        out = []
        for item in sorted(items, key=lambda i: i.name() or ""):
            self._track(item)
            out.append({
                "name": item.name(),
                "service_id": item.service_id,
                "service_type": self._kind_of(item),
            })
        return out

    def _op_get_value(self, ctx):
        name = ctx.get_value("arg/name")
        item = yield from self._find_sensor(name)
        value = yield from self._exert_on(item, OP_GET_VALUE, {},
                                          parent_ctx=ctx)
        return value

    def _op_get_sensor_info(self, ctx):
        name = ctx.get_value("arg/name")
        item = yield from self._find_sensor(name)
        info = yield from self._exert_on(item, OP_GET_INFO, {},
                                         parent_ctx=ctx)
        return info

    def _op_get_values(self, ctx):
        """Read several sensors in one façade call; children are queried
        concurrently. Unreachable sensors map to ``None`` instead of
        failing the batch."""
        names = ctx.get_value("arg/names")

        def one(name):
            try:
                item = yield from self._find_sensor(name)
                value = yield from self._exert_on(item, OP_GET_VALUE, {},
                                                  parent_ctx=ctx)
                return value
            except (FacadeError, Overloaded):
                return None

        procs = {name: self.env.process(one(name), name=f"facade-batch:{name}")
                 for name in names}
        yield self.env.all_of(list(procs.values()))
        return {name: proc.value for name, proc in procs.items()}

    def _op_get_sensor_stats(self, ctx):
        """Buffered-history statistics of an elementary sensor service."""
        name = ctx.get_value("arg/name")
        window = ctx.get_value("arg/window", None)
        item = yield from self._find_sensor(name)
        args = {} if window is None else {"window": window}
        stats = yield from self._exert_on(item, OP_GET_STATS, args,
                                          parent_ctx=ctx)
        return stats

    def _op_compose_service(self, ctx):
        """Add child services to a composite; returns {child: variable}."""
        composite_name = ctx.get_value("arg/composite")
        child_names = ctx.get_value("arg/children")
        composite = yield from self._find_sensor(composite_name)
        if self._kind_of(composite) != KIND_COMPOSITE:
            raise FacadeError(f"{composite_name!r} is not a composite service")
        self._track(composite)
        assigned = {}
        for child_name in child_names:
            child = yield from self._find_sensor(child_name)
            self._track(child)
            variable = yield from self._exert_on(
                composite, OP_ADD_SERVICE,
                {"service_id": child.service_id, "name": child_name},
                parent_ctx=ctx)
            self.manager.compose(composite.service_id, child.service_id)
            assigned[child_name] = variable
        return assigned

    def _op_decompose_service(self, ctx):
        """Remove one child from a composite (runtime re-grouping)."""
        composite_name = ctx.get_value("arg/composite")
        child_name = ctx.get_value("arg/child")
        composite = yield from self._find_sensor(composite_name)
        child = yield from self._find_sensor(child_name)
        yield from self._exert_on(composite, OP_REMOVE_SERVICE,
                                  {"service_id": child.service_id},
                                  parent_ctx=ctx)
        try:
            self.manager.decompose(composite.service_id, child.service_id)
        except Exception:
            pass  # model may not have tracked this edge; the CSP is truth
        return True

    def _op_add_expression(self, ctx):
        name = ctx.get_value("arg/name")
        expression = ctx.get_value("arg/expression")
        item = yield from self._find_sensor(name)
        yield from self._exert_on(item, OP_SET_EXPRESSION,
                                  {"expression": expression},
                                  parent_ctx=ctx)
        return True

    def _op_create_service(self, ctx):
        """Provision a brand-new composite onto the network (§VI step 3)."""
        name = ctx.get_value("arg/name")
        try:
            item = yield from self.provisioner.provision_composite(name)
        except ProvisionError as exc:
            raise FacadeError(str(exc)) from exc
        self._track(item)
        return {"name": name, "service_id": item.service_id}

    def _op_network_snapshot(self, ctx):
        return self.manager.snapshot()

    # -- network health (management plane) ------------------------------------------

    def _health(self):
        from ..observability.health import health_monitor
        return health_monitor(self.host.network)

    def _op_network_health(self, ctx):
        """The operator's one-call view: statuses, SLOs, alerts."""
        return self._health().snapshot()

    def _op_subscribe_health_alerts(self, ctx):
        """Surface SLO alerts as distributed events: every firing/resolved
        edge is pushed to ``arg/listener`` (typically a mailbox slot, so
        offline operators still get the full alert history)."""
        listener = ctx.get_value("arg/listener")
        monitor = self._health()
        if not self._alerts_hooked:
            monitor.engine.subscribe(self._on_health_alert)
            self._alerts_hooked = True
        self._health_listeners.append(listener)
        return len(monitor.engine.alerts)

    def _on_health_alert(self, alert) -> None:
        from ..jini.events import HealthEvent
        self._health_sequence += 1
        event = HealthEvent(
            source=self.service_id, event_id=0,
            sequence=self._health_sequence,
            slo=alert.slo, state=alert.state, signal=alert.signal,
            threshold=alert.threshold, t=alert.t,
            description=alert.description)
        for listener in list(self._health_listeners):
            self.env.process(self._push_health_event(listener, event),
                             name=f"facade-alert:{alert.slo}")

    def _push_health_event(self, listener, event):
        if not self.host.up:
            return
        try:
            yield self._endpoint.call(listener, "notify", event,
                                      kind="health-event", timeout=3.0)
        except Interrupt:
            raise
        except Exception:
            # At-most-once Jini delivery: an unreachable listener misses
            # the edge; its mailbox lease will eventually lapse anyway.
            pass

    # -- composition plans and self-healing ----------------------------------------

    def _op_save_network_plan(self, ctx):
        """Capture the live composition state as a declarative plan.

        Save while the network is healthy; composites are visited
        leaves-first so nested composites re-form bottom-up on apply.
        """
        import networkx as nx
        graph = self.manager.graph
        ordered = [node for node in reversed(list(nx.topological_sort(graph)))
                   if graph.nodes[node]["kind"] == KIND_COMPOSITE]
        plan = CompositionPlan()
        for service_id in ordered:
            name = self.manager.name_of(service_id)
            item = yield from self._find_sensor(name)
            info = yield from self._exert_on(item, OP_GET_INFO, {},
                                             parent_ctx=ctx)
            plan.add(name, info.get("contained_services") or (),
                     info.get("expression"))
        return plan

    def _op_apply_network_plan(self, ctx):
        plan = ctx.get_value("arg/plan")
        actions = yield from self._apply_plan(plan, strict=True,
                                              parent_ctx=ctx)
        return actions

    def _op_enable_self_healing(self, ctx):
        """Keep the network converged to the plan (§VII plug-and-play made
        durable: a re-provisioned, empty composite is re-composed)."""
        self._healing_plan = ctx.get_value("arg/plan")
        self._healing_interval = float(ctx.get_value("arg/interval", 5.0))
        if self._healing_proc is None:
            self._healing_proc = self.env.process(
                self._healing_loop(), name=f"facade-heal:{self.name}")
        return True

    def _op_disable_self_healing(self, ctx):
        self._healing_plan = None
        return True

    def _healing_loop(self):
        while True:
            yield self.env.timeout(self._healing_interval)
            plan = self._healing_plan
            if plan is None or not self.host.up:
                continue
            try:
                applied = yield from self._apply_plan(plan, strict=False)
                self.healing_actions += applied
            except Interrupt:
                raise
            except Exception:
                continue

    def _apply_plan(self, plan: CompositionPlan, strict: bool,
                    parent_ctx: Optional[ServiceContext] = None):
        applied = 0
        for entry in plan.entries:
            try:
                applied += yield from self._apply_entry(entry, parent_ctx)
            except FacadeError:
                if strict:
                    raise
        return applied

    def _apply_entry(self, entry: PlanEntry,
                     parent_ctx: Optional[ServiceContext] = None):
        composite = yield from self._find_sensor(entry.composite)
        self._track(composite)
        listed = yield from self._exert_on(composite, OP_LIST_SERVICES, {},
                                           parent_ctx=parent_ctx)
        current = [record["name"] for record in listed]
        wanted = list(entry.children)
        if current != wanted[:len(current)]:
            raise FacadeError(
                f"{entry.composite!r} holds {current}, which conflicts with "
                f"the plan order {wanted}; cannot reconcile safely "
                "(variable bindings would shift)")
        actions = 0
        for child_name in wanted[len(current):]:
            child = yield from self._find_sensor(child_name)
            self._track(child)
            yield from self._exert_on(
                composite, OP_ADD_SERVICE,
                {"service_id": child.service_id, "name": child_name},
                parent_ctx=parent_ctx)
            try:
                self.manager.compose(composite.service_id, child.service_id)
            except Exception:
                pass
            actions += 1
        if entry.expression is not None:
            info = yield from self._exert_on(composite, OP_GET_INFO, {},
                                             parent_ctx=parent_ctx)
            if info.get("expression") != entry.expression:
                yield from self._exert_on(composite, OP_SET_EXPRESSION,
                                          {"expression": entry.expression},
                                          parent_ctx=parent_ctx)
                actions += 1
        return actions
