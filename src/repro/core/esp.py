"""Elementary Sensor Provider — the framework's basic building block (§V.B).

An ESP wraps exactly one :class:`~repro.sensors.probe.SensorProbe` (the only
sensor-dependent component) and exports the technology-independent
``SensorDataAccessor`` interface. It samples the probe on its own schedule
into a local :class:`~repro.sensors.buffer.ReadingBuffer` (the data-flow
reversal fix of §II.4: consumers poll the service, not the sensor) and
plays the role of a *node* in the logical sensor network.
"""

from __future__ import annotations

from typing import Optional

from ..jini.entries import Location, SensorType
from ..jini.lease import Landlord
from ..net.host import Host
from ..net.rpc import RemoteRef
from ..observability import metrics_registry
from ..resilience import DEADLINE_PATH, Deadline
from ..sensors.buffer import ReadingBuffer
from ..sensors.probe import ProbeError, Reading, SensorProbe
from ..sim import Interrupt
from ..sorcer.provider import ServiceProvider
from .events import SensorReadingEvent, Subscription
from .interfaces import (
    DATA_COLLECTION,
    ELEMENTARY_PROVIDER,
    KIND_ELEMENTARY,
    OP_GET_HISTORY,
    OP_GET_INFO,
    OP_GET_READING,
    OP_GET_STATS,
    OP_GET_VALUE,
    SENSOR_DATA_ACCESSOR,
)

__all__ = ["ElementarySensorProvider"]


class ElementarySensorProvider(ServiceProvider):
    """Wraps one probe as a network sensor service."""

    SERVICE_TYPES = (SENSOR_DATA_ACCESSOR, ELEMENTARY_PROVIDER, DATA_COLLECTION)

    def __init__(self, host: Host, name: str, probe: SensorProbe,
                 sample_interval: float = 1.0,
                 buffer_capacity: int = 256,
                 location: Optional[Location] = None,
                 technology: str = "simulated",
                 attributes: tuple = (),
                 **kwargs):
        teds = probe.teds
        sensor_attrs = (SensorType(quantity=teds.quantity, unit=teds.unit,
                                   technology=technology,
                                   service_kind=KIND_ELEMENTARY),)
        if location is not None:
            sensor_attrs += (location,)
        super().__init__(host, name, attributes=sensor_attrs + tuple(attributes),
                         **kwargs)
        self.probe = probe
        self.sample_interval = sample_interval
        self.buffer = ReadingBuffer(buffer_capacity)
        self.sample_errors = 0
        self._sampling = False
        #: Leased push subscriptions (§II.5): event_id -> subscriber state.
        self._subscribers: dict[int, dict] = {}
        self._sub_landlord = Landlord(host.env, max_duration=600.0,
                                      on_expire=self._drop_subscription)
        self.events_pushed = 0
        registry = metrics_registry(host.network)
        self._m_samples = registry.counter("esp.samples", provider=name)
        self._m_sample_errors = registry.counter("esp.sample_errors",
                                                 provider=name)
        self._m_buffer_depth = registry.gauge("esp.buffer_depth",
                                              provider=name)
        self._m_events_pushed = registry.counter("esp.events_pushed",
                                                 provider=name)
        self.add_operation(OP_GET_VALUE, self._op_get_value)
        self.add_operation(OP_GET_READING, self._op_get_reading)
        self.add_operation(OP_GET_INFO, self._op_get_info)
        self.add_operation(OP_GET_HISTORY, self._op_get_history)
        self.add_operation(OP_GET_STATS, self._op_get_stats)
        self.add_operation("subscribe", self._op_subscribe)
        self.add_operation("unsubscribe", self._op_unsubscribe)
        self.add_operation("renewSubscription", self._op_renew_subscription)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ElementarySensorProvider":
        super().start()
        if not self._sampling:
            self._sampling = True
            if not self.probe.connected:
                self.probe.connect()
            self.env.process(self._sampler(), name=f"esp-sample:{self.name}")
            self.env.process(self._sub_landlord.sweeper(1.0),
                             name=f"esp-subs:{self.name}")
        return self

    def destroy(self):
        self._sampling = False
        self.probe.disconnect()
        yield from super().destroy()

    def _sampler(self):
        while self._sampling:
            if self.host.up and self.probe.connected:
                try:
                    reading = yield self.env.process(self.probe.read())
                    self.buffer.append(reading)
                    self._m_samples.inc()
                    self._m_buffer_depth.set(len(self.buffer))
                    self._publish(reading)
                except ProbeError:
                    self.sample_errors += 1
                    self._m_sample_errors.inc()
            yield self.env.timeout(self.sample_interval)

    # -- push subscriptions (§II.5 on-the-fly data) ----------------------------------

    def _publish(self, reading: Reading) -> None:
        # Subscribers push in subscription order (insertion-ordered dict).
        for event_id, sub in list(  # repro: allow[DET003]
                self._subscribers.items()):
            if not self._sub_landlord.is_active(sub["lease_id"]):
                continue
            if reading.timestamp - sub["last_pushed"] < sub["min_interval"]:
                continue
            sub["last_pushed"] = reading.timestamp
            sub["sequence"] += 1
            event = SensorReadingEvent(
                source=self.service_id, event_id=event_id,
                sequence=sub["sequence"], handback=sub["handback"],
                sensor_name=self.name, reading=reading)
            self.env.process(self._push(sub["listener"], event),
                             name=f"esp-push:{self.name}")

    def _push(self, listener: RemoteRef, event: SensorReadingEvent):
        if not self.host.up:
            return
        try:
            yield self._endpoint.call(listener, "notify", event,
                                      kind="sensor-event", timeout=3.0)
            self.events_pushed += 1
            self._m_events_pushed.inc()
        except Interrupt:
            raise
        except Exception:
            pass  # unreachable subscriber: its lease will lapse

    def _drop_subscription(self, event_id: int) -> None:
        self._subscribers.pop(event_id, None)

    def _op_subscribe(self, ctx):
        listener = ctx.get_value("arg/listener")
        min_interval = float(ctx.get_value("arg/min_interval", 0.0))
        duration = float(ctx.get_value("arg/lease_duration", 60.0))
        handback = ctx.get_value("arg/handback", None)
        event_id = self.host.network.ids.sequence()
        lease = self._sub_landlord.grant(event_id, duration)
        self._subscribers[event_id] = {
            "listener": listener, "min_interval": min_interval,
            "last_pushed": -float("inf"), "sequence": 0,
            "handback": handback, "lease_id": lease.lease_id,
        }
        return Subscription(event_id=event_id, lease_id=lease.lease_id,
                            expiration=lease.expiration,
                            min_interval=min_interval)

    def _op_unsubscribe(self, ctx):
        lease_id = ctx.get_value("arg/lease_id")
        event_id = self._sub_landlord.cancel(lease_id)
        self._drop_subscription(event_id)
        return True

    def _op_renew_subscription(self, ctx):
        lease_id = ctx.get_value("arg/lease_id")
        duration = float(ctx.get_value("arg/lease_duration", 60.0))
        lease = self._sub_landlord.renew(lease_id, duration)
        return lease.expiration

    # -- operations ----------------------------------------------------------------

    def _latest(self):
        """Freshest reading: buffered if recent, else a direct probe read."""
        last = self.buffer.last()
        if last is not None and self.env.now - last.timestamp <= 2 * self.sample_interval:
            return last
        reading = yield self.env.process(self.probe.read())
        self.buffer.append(reading)
        return reading

    def _check_deadline(self, ctx) -> None:
        """Honor a propagated exertion deadline: refuse work on a request
        whose end-to-end budget is already spent (the caller has given up;
        answering would only burn the probe and the network)."""
        expires_at = ctx.get_value(DEADLINE_PATH, None)
        if expires_at is not None:
            Deadline(float(expires_at)).check(self.env.now,
                                              what=f"read on {self.name!r}")

    def _op_get_value(self, ctx):
        self._check_deadline(ctx)
        reading = yield from self._latest()
        return reading.value

    def _op_get_reading(self, ctx):
        self._check_deadline(ctx)
        reading = yield from self._latest()
        return reading

    def _op_get_info(self, ctx):
        teds = self.probe.teds
        return {
            "name": self.name,
            "service_id": self.service_id,
            "service_type": KIND_ELEMENTARY,
            "quantity": teds.quantity,
            "unit": teds.unit,
            "manufacturer": teds.manufacturer,
            "model": teds.model,
            "accuracy": teds.accuracy,
            "contained_services": [],
            "expression": None,
        }

    def _op_get_history(self, ctx):
        count = int(ctx.get_value("arg/count", 10))
        return self.buffer.window(count)

    def _op_get_stats(self, ctx):
        window = ctx.get_value("arg/window", None)
        return self.buffer.stats(int(window) if window is not None else None)
