"""Sensor network manager — the model of the logical sensor network.

Tracks which sensor services exist and how composites contain them, as a
directed acyclic graph (networkx): an edge ``parent -> child`` means the
composite ``parent`` aggregates ``child``. The façade updates this model as
it executes management requests, and the sensor browser renders it — the M
of the browser's MVC (§V.B).
"""

from __future__ import annotations


import networkx as nx

__all__ = ["SensorNetworkManager", "NetworkModelError"]


class NetworkModelError(Exception):
    """Invalid logical-network mutation (cycle, unknown node, duplicate)."""


class SensorNetworkManager:
    """In-memory DAG of the logical sensor network."""

    def __init__(self):
        self.graph = nx.DiGraph()

    # -- nodes ------------------------------------------------------------------

    def register_service(self, service_id: str, name: str, kind: str) -> None:
        if service_id in self.graph:
            # Idempotent refresh of metadata.
            self.graph.nodes[service_id].update(name=name, kind=kind)
            return
        self.graph.add_node(service_id, name=name, kind=kind)

    def unregister_service(self, service_id: str) -> None:
        if service_id not in self.graph:
            raise NetworkModelError(f"unknown service {service_id!r}")
        self.graph.remove_node(service_id)

    def has_service(self, service_id: str) -> bool:
        return service_id in self.graph

    def name_of(self, service_id: str) -> str:
        self._require(service_id)
        return self.graph.nodes[service_id]["name"]

    def kind_of(self, service_id: str) -> str:
        self._require(service_id)
        return self.graph.nodes[service_id]["kind"]

    def services(self) -> list[str]:
        return sorted(self.graph.nodes)

    # -- composition edges ----------------------------------------------------------

    def compose(self, parent_id: str, child_id: str) -> None:
        self._require(parent_id)
        self._require(child_id)
        if parent_id == child_id:
            raise NetworkModelError("a composite cannot contain itself")
        if self.graph.has_edge(parent_id, child_id):
            raise NetworkModelError(
                f"{self.name_of(child_id)!r} already composed in "
                f"{self.name_of(parent_id)!r}")
        if nx.has_path(self.graph, child_id, parent_id):
            raise NetworkModelError(
                f"composing {self.name_of(child_id)!r} into "
                f"{self.name_of(parent_id)!r} would create a cycle")
        self.graph.add_edge(parent_id, child_id)

    def decompose(self, parent_id: str, child_id: str) -> None:
        if not self.graph.has_edge(parent_id, child_id):
            raise NetworkModelError("no such composition edge")
        self.graph.remove_edge(parent_id, child_id)

    def children_of(self, service_id: str) -> list[str]:
        self._require(service_id)
        return sorted(self.graph.successors(service_id))

    def parents_of(self, service_id: str) -> list[str]:
        self._require(service_id)
        return sorted(self.graph.predecessors(service_id))

    def subnet_members(self, root_id: str) -> list[str]:
        """Every service reachable under a composite (the logical subnet)."""
        self._require(root_id)
        return sorted(nx.descendants(self.graph, root_id))

    def roots(self) -> list[str]:
        """Services not contained in any composite (network entry points)."""
        return sorted(n for n in self.graph.nodes
                      if self.graph.in_degree(n) == 0)

    # -- snapshot ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "nodes": [{"service_id": n, **self.graph.nodes[n]}
                      for n in sorted(self.graph.nodes)],
            "edges": [{"parent": u, "child": v}
                      for u, v in sorted(self.graph.edges)],
        }

    def _require(self, service_id: str) -> None:
        if service_id not in self.graph:
            raise NetworkModelError(f"unknown service {service_id!r}")
