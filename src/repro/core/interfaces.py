"""SenSORCER remote interface names and operation selectors.

Remote types are matched by name in lookup templates (Jini semantics), so
the canonical strings live here. ``SensorDataAccessor`` is the common
interface every sensor provider (elementary or composite) implements
(§V.A); ``DataCollection`` is the probe-facing interface inside an ESP.
"""

from __future__ import annotations

__all__ = [
    "SENSOR_DATA_ACCESSOR",
    "DATA_COLLECTION",
    "ELEMENTARY_PROVIDER",
    "COMPOSITE_PROVIDER",
    "FACADE",
    "OP_GET_VALUE",
    "OP_GET_READING",
    "OP_GET_INFO",
    "OP_GET_HISTORY",
    "OP_GET_STATS",
    "OP_ADD_SERVICE",
    "OP_REMOVE_SERVICE",
    "OP_SET_EXPRESSION",
    "OP_LIST_SERVICES",
    "KIND_ELEMENTARY",
    "KIND_COMPOSITE",
]

#: Remote interface implemented by every sensor service.
SENSOR_DATA_ACCESSOR = "SensorDataAccessor"
#: Probe-facing collection interface (internal to an ESP).
DATA_COLLECTION = "DataCollection"
ELEMENTARY_PROVIDER = "ElementarySensorProvider"
COMPOSITE_PROVIDER = "CompositeSensorProvider"
FACADE = "SensorcerFacade"

# SensorDataAccessor selectors.
OP_GET_VALUE = "getValue"
OP_GET_READING = "getReading"
OP_GET_INFO = "getInfo"
OP_GET_HISTORY = "getHistory"
OP_GET_STATS = "getStats"

# Composite management selectors.
OP_ADD_SERVICE = "addService"
OP_REMOVE_SERVICE = "removeService"
OP_SET_EXPRESSION = "setExpression"
OP_LIST_SERVICES = "listServices"

KIND_ELEMENTARY = "ELEMENTARY"
KIND_COMPOSITE = "COMPOSITE"
