"""Dynamic expression-variable naming.

§VI: "The variables that are used in the expression are created
dynamically, as the services are added into the composite provider" —
first composed service becomes ``a``, second ``b``, and so on; after ``z``
comes ``aa``, ``ab``, ... (spreadsheet-column style)."""

from __future__ import annotations

__all__ = ["variable_name", "variable_index"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def variable_name(index: int) -> str:
    """0 -> 'a', 25 -> 'z', 26 -> 'aa', 27 -> 'ab', ..."""
    if index < 0:
        raise ValueError(f"variable index must be >= 0, got {index}")
    name = ""
    index += 1  # bijective base-26
    while index > 0:
        index, rem = divmod(index - 1, 26)
        name = _ALPHABET[rem] + name
    return name


def variable_index(name: str) -> int:
    """Inverse of :func:`variable_name`."""
    if not name or any(c not in _ALPHABET for c in name):
        raise ValueError(f"not a variable name: {name!r}")
    index = 0
    for c in name:
        index = index * 26 + (_ALPHABET.index(c) + 1)
    return index - 1
