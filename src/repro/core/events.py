"""Sensor data push — distributed events carrying readings (§II.5).

The paper motivates that "no mechanism is available by which metacomputing
applications can get sensor data on-the-fly". SenSORCER's substrate (Jini
distributed events) supports exactly that, so we close the gap: an ESP
accepts leased subscriptions and pushes a :class:`SensorReadingEvent` to
each listener as new samples arrive (rate-limited per subscriber). A
subscriber that disappears simply stops renewing; the lease lapses and the
push stops — no dangling consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..jini.events import RemoteEvent
from ..sensors.probe import Reading

__all__ = ["SensorReadingEvent", "Subscription"]


@dataclass
class SensorReadingEvent(RemoteEvent):
    """A fresh reading pushed from a sensor service to a subscriber."""

    sensor_name: str = ""
    reading: Optional[Reading] = None


@dataclass
class Subscription:
    """Returned by the ESP's ``subscribe`` operation."""

    event_id: int
    lease_id: int
    expiration: float
    min_interval: float
