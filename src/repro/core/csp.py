"""Composite Sensor Provider — logical sensor networking (§V.B).

A CSP composes elementary and composite sensor services. Its two roles:

* **aggregate** — collect values from component services (as a P2P
  requestor, exerting ``getValue`` tasks bound by service id), evaluate the
  attached compute-expression over dynamically created variables
  (``a``, ``b``, ... in composition order) and return the calibrated
  composite value through the same ``SensorDataAccessor`` interface;
* **child** — since a CSP *is* a sensor service, it can itself be composed
  into a parent CSP, which is what makes a whole sensor network manageable
  as a single CSP.

Cycle safety: a ``composite/visited`` list travels in the exertion context;
a CSP that finds itself already visited fails the request instead of
recursing forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..expr import Expression, ExprError
from ..jini.entries import SensorType
from ..net.host import Host
from ..observability import metrics_registry, propagate_trace
from ..resilience import DEADLINE_PATH, Deadline, resilience_events
from ..sensors.probe import Reading
from ..sorcer.context import ServiceContext
from ..sorcer.exerter import Exerter
from ..sorcer.exertion import Strategy, Task
from ..sorcer.provider import ServiceProvider
from ..sorcer.signature import Signature
from .interfaces import (
    COMPOSITE_PROVIDER,
    KIND_COMPOSITE,
    OP_ADD_SERVICE,
    OP_GET_HISTORY,
    OP_GET_INFO,
    OP_GET_READING,
    OP_GET_STATS,
    OP_GET_VALUE,
    OP_LIST_SERVICES,
    OP_REMOVE_SERVICE,
    OP_SET_EXPRESSION,
    SENSOR_DATA_ACCESSOR,
)
from .variables import variable_name

__all__ = ["CompositeSensorProvider", "CompositionError", "STALE_PATH"]

VISITED_PATH = "composite/visited"
#: Result-context path listing stale substitutions made for this query.
STALE_PATH = "composite/stale"


class CompositionError(Exception):
    """Invalid composite configuration (cycle, bad expression, unknown child)."""


@dataclass
class _Child:
    service_id: str
    display_name: str

    @property
    def key(self) -> str:
        return self.service_id


class CompositeSensorProvider(ServiceProvider):
    """Aggregates sensor services and evaluates compute-expressions."""

    SERVICE_TYPES = (SENSOR_DATA_ACCESSOR, COMPOSITE_PROVIDER)

    def __init__(self, host: Host, name: str,
                 strategy: Strategy = Strategy.PARALLEL,
                 child_wait: float = 5.0,
                 child_timeout: float = 10.0,
                 fault_policy: str = "strict",
                 stale_max_age: float = 30.0,
                 coalesce: bool = False,
                 attributes: tuple = (),
                 **kwargs):
        """``child_timeout`` bounds each child invocation (sensor reads are
        fast; a slow child is a lost message or a dead host and the exerter
        should retry/fail over rather than wait).

        ``fault_policy``:

        * ``"strict"`` (default) — any unreachable child fails the query;
        * ``"skip"`` — aggregate over the children that answered. Only
          valid while no expression is attached (an expression names its
          variables, so a missing child would silently shift bindings);
        * ``"degraded"`` — substitute a child's last known good value when
          it is unreachable (open-circuit or timed out), provided the value
          is younger than ``stale_max_age``. Variable bindings are
          preserved, so this is legal even with an expression attached;
          substitutions are flagged in the returned context/``Reading``.

        ``coalesce=True`` shares one in-flight child collection among all
        concurrent ``getValue`` queries: under read pressure N overlapping
        reads cost one fan-out instead of N (the bindings are identical
        anyway — the sensors can't have re-sampled mid-collection). Any
        composition change bumps an epoch so joiners never see a fan-out
        started against the old child set. Off by default: coalescing
        trades read isolation for throughput, which only pays under load.
        """
        if fault_policy not in ("strict", "skip", "degraded"):
            raise ValueError(f"unknown fault_policy {fault_policy!r}")
        composite_attrs = (SensorType(service_kind=KIND_COMPOSITE),)
        super().__init__(host, name,
                         attributes=composite_attrs + tuple(attributes),
                         **kwargs)
        self.strategy = strategy
        self.child_wait = child_wait
        self.child_timeout = child_timeout
        self.fault_policy = fault_policy
        self.stale_max_age = stale_max_age
        self.children: list[_Child] = []
        self.expression: Optional[Expression] = None
        self.exerter = Exerter(host)
        self.events = resilience_events(host.network)
        self.last_value: Optional[float] = None
        #: Degraded-mode cache: child service_id -> (timestamp, value).
        self.last_known_good: dict[str, tuple[float, float]] = {}
        #: How many stale values this provider has served (observability).
        self.stale_substitutions = 0
        #: Read coalescing: share one child fan-out among concurrent reads.
        self.coalesce = coalesce
        self._read_epoch = 0
        self._inflight_read: Optional[tuple] = None
        self._m_coalesced = metrics_registry(host.network).counter(
            "csp.coalesced", provider=name)
        self.add_operation(OP_GET_VALUE, self._op_get_value)
        self.add_operation(OP_GET_READING, self._op_get_reading)
        self.add_operation(OP_GET_INFO, self._op_get_info)
        self.add_operation(OP_ADD_SERVICE, self._op_add_service)
        self.add_operation(OP_REMOVE_SERVICE, self._op_remove_service)
        self.add_operation(OP_SET_EXPRESSION, self._op_set_expression)
        self.add_operation(OP_LIST_SERVICES, self._op_list_services)

    # -- composition management (local API; also exposed as operations) ---------------

    def variable_of(self, service_id: str) -> str:
        for index, child in enumerate(self.children):
            if child.service_id == service_id:
                return variable_name(index)
        raise CompositionError(f"{service_id!r} is not composed in {self.name!r}")

    def add_child(self, service_id: str, display_name: str) -> str:
        """Compose a sensor service; returns the variable created for it."""
        if service_id == self.service_id:
            raise CompositionError(f"{self.name!r} cannot contain itself")
        if any(c.service_id == service_id for c in self.children):
            raise CompositionError(
                f"{display_name!r} ({service_id}) already composed in {self.name!r}")
        self.children.append(_Child(service_id, display_name))
        self._read_epoch += 1
        return variable_name(len(self.children) - 1)

    def remove_child(self, service_id: str) -> None:
        before = len(self.children)
        self.children = [c for c in self.children if c.service_id != service_id]
        if len(self.children) == before:
            raise CompositionError(f"{service_id!r} is not composed in {self.name!r}")
        self._read_epoch += 1
        self._check_expression_bindings()

    def set_expression(self, text: Optional[str]) -> None:
        """Attach (or clear, with ``None``) the compute-expression."""
        if text is None:
            self.expression = None
            return
        if self.fault_policy == "skip":
            raise CompositionError(
                "expressions require fault_policy='strict' or 'degraded': a "
                "skipped child would silently re-map the remaining variables")
        try:
            expression = Expression(text)
        except ExprError as exc:
            raise CompositionError(f"bad expression {text!r}: {exc}") from exc
        self.expression = expression
        self._read_epoch += 1
        self._check_expression_bindings()

    def _check_expression_bindings(self) -> None:
        if self.expression is None:
            return
        available = {variable_name(i) for i in range(len(self.children))}
        unbound = set(self.expression.variables) - available
        if unbound:
            raise CompositionError(
                f"expression {self.expression.text!r} references unbound "
                f"variable(s) {sorted(unbound)}; composed services define "
                f"{sorted(available)}")

    # -- value aggregation ----------------------------------------------------------

    def _child_task(self, child: _Child, visited: list,
                    deadline: Optional[Deadline],
                    parent_ctx: Optional[ServiceContext] = None) -> Task:
        ctx = ServiceContext(f"{self.name}->{child.display_name}")
        ctx.put_value(VISITED_PATH, list(visited))
        if parent_ctx is not None:
            # Child collection hops become children of this CSP's serve span.
            propagate_trace(parent_ctx, ctx)
        task = Task(f"collect-{child.display_name}",
                    Signature(SENSOR_DATA_ACCESSOR, OP_GET_VALUE,
                              service_id=child.service_id), ctx)
        task.control.provider_wait = self.child_wait
        task.control.invocation_timeout = self.child_timeout
        if deadline is not None:
            # Nested calls inherit the caller's remaining budget instead of
            # compounding their own waits on top of it.
            task.control.deadline = deadline
            now = self.env.now
            task.control.provider_wait = deadline.clamp(self.child_wait, now)
            task.control.invocation_timeout = deadline.clamp(
                self.child_timeout, now)
        return task

    def _collect(self, visited: list, deadline: Optional[Deadline] = None,
                 parent_ctx: Optional[ServiceContext] = None):
        """Collect child values; returns ({variable: value}, stale-notes).
        Generator. Under ``fault_policy="degraded"`` an unreachable child's
        binding is served from ``last_known_good`` when fresh enough."""
        if not self.children:
            raise CompositionError(f"{self.name!r} has no composed services")
        tasks = [self._child_task(child, visited, deadline, parent_ctx)
                 for child in self.children]
        if self.strategy is Strategy.PARALLEL:
            procs = [self.env.process(self.exerter.exert(task),
                                      name=f"csp-collect:{task.name}")
                     for task in tasks]
            results = yield self.env.all_of(procs)
        else:
            results = []
            for task in tasks:
                result = yield self.env.process(self.exerter.exert(task))
                results.append(result)
        bindings = {}
        failures = []
        stale = []
        now = self.env.now
        for index, result in enumerate(results):
            child = self.children[index]
            if result.is_failed:
                if self.fault_policy == "degraded":
                    cached = self.last_known_good.get(child.service_id)
                    if cached is not None and now - cached[0] <= self.stale_max_age:
                        bindings[variable_name(index)] = cached[1]
                        age = now - cached[0]
                        stale.append({"variable": variable_name(index),
                                      "child": child.display_name,
                                      "age": age})
                        self.stale_substitutions += 1
                        self.events.emit("stale_substitution",
                                         composite=self.name,
                                         child=child.display_name,
                                         age=round(age, 6))
                        continue
                failures.append(
                    f"{child.display_name}: {result.exceptions}")
                continue
            value = result.get_return_value()
            bindings[variable_name(index)] = value
            self.last_known_good[child.service_id] = (now, value)
        # An expression needs every variable bound; strict needs every child
        # live. Degraded tolerates failures only when stale values (or, with
        # no expression, the surviving children) cover them.
        if failures and (self.fault_policy == "strict"
                         or self.expression is not None):
            raise CompositionError(
                f"{self.name!r}: component value collection failed: "
                + "; ".join(failures))
        if not bindings:
            raise CompositionError(
                f"{self.name!r}: no component answered "
                f"({len(failures)} failures)")
        return bindings, stale

    def _collect_coalesced(self, visited: list,
                           deadline: Optional[Deadline] = None,
                           parent_ctx: Optional[ServiceContext] = None):
        """Like :meth:`_collect`, but concurrent reads share one fan-out.

        The first reader (the *leader*) runs the real collection; readers
        arriving while it is in flight wait on its completion event and
        reuse its bindings. The sharing token carries the composition
        epoch, so a fan-out started before an add/remove/set_expression is
        never joined afterwards. The event always *succeeds* — carrying an
        ``("ok", ...)`` or ``("err", ...)`` outcome — because a failed
        event with multiple observers would escape the scheduler.
        """
        if not self.coalesce:
            result = yield from self._collect(visited, deadline, parent_ctx)
            return result
        token = self._inflight_read
        if token is not None and token[0] == self._read_epoch:
            self._m_coalesced.inc()
            self.events.emit("csp_coalesced", composite=self.name)
            outcome = yield token[1]
            if outcome[0] == "ok":
                return outcome[1], outcome[2]
            raise CompositionError(outcome[1])
        event = self.env.event()
        self._inflight_read = (self._read_epoch, event)
        try:
            bindings, stale = yield from self._collect(visited, deadline,
                                                       parent_ctx)
        except BaseException as exc:
            if self._inflight_read is not None \
                    and self._inflight_read[1] is event:
                self._inflight_read = None
            event.succeed(("err", str(exc)))
            raise
        if self._inflight_read is not None and self._inflight_read[1] is event:
            self._inflight_read = None
        event.succeed(("ok", bindings, stale))
        return bindings, stale

    def _op_get_value(self, ctx):
        visited = list(ctx.get_value(VISITED_PATH, []))
        if self.service_id in visited:
            raise CompositionError(
                f"composition cycle detected at {self.name!r} "
                f"(visited: {len(visited)} services)")
        visited.append(self.service_id)
        expires_at = ctx.get_value(DEADLINE_PATH, None)
        deadline = Deadline(float(expires_at)) if expires_at is not None else None
        bindings, stale = yield from self._collect_coalesced(visited, deadline,
                                                             parent_ctx=ctx)
        if self.expression is not None:
            value = self.expression.evaluate(bindings)
        else:
            values = list(bindings.values())
            value = sum(values) / len(values)
        self.last_value = value
        if stale:
            # Travels back to the requestor in the result context.
            ctx.put_value(STALE_PATH, stale)
        return value

    def _op_get_reading(self, ctx):
        value = yield from self._op_get_value(ctx)
        quality = "stale" if ctx.get_value(STALE_PATH, None) else "good"
        return Reading(value=value, unit="composite", timestamp=self.env.now,
                       sensor_id=self.service_id, quality=quality)

    # -- info / management operations ----------------------------------------------

    def _op_get_info(self, ctx):
        return {
            "name": self.name,
            "service_id": self.service_id,
            "service_type": KIND_COMPOSITE,
            "quantity": None,
            "unit": "composite",
            "contained_services": [c.display_name for c in self.children],
            "expression": self.expression.text if self.expression else None,
            "fault_policy": self.fault_policy,
        }

    def _op_add_service(self, ctx):
        service_id = ctx.get_value("arg/service_id")
        display_name = ctx.get_value("arg/name")
        return self.add_child(service_id, display_name)

    def _op_remove_service(self, ctx):
        self.remove_child(ctx.get_value("arg/service_id"))
        return True

    def _op_set_expression(self, ctx):
        self.set_expression(ctx.get_value("arg/expression"))
        return True

    def _op_list_services(self, ctx):
        return [{"name": child.display_name, "service_id": child.service_id,
                 "variable": variable_name(index)}
                for index, child in enumerate(self.children)]
