"""SenSORCER core — the paper's primary contribution (§V).

Elementary sensor providers wrap probes; composite providers aggregate
them with runtime compute-expressions over dynamically created variables;
the façade is the single management entry point; the browser is the
zero-install service UI; the provisioner allocates new sensor services via
Rio.
"""

from .browser import BrowserError, SensorBrowser
from .csp import STALE_PATH, CompositeSensorProvider, CompositionError
from .esp import ElementarySensorProvider
from .events import SensorReadingEvent, Subscription
from .facade import FacadeError, SensorcerFacade
from .interfaces import (
    COMPOSITE_PROVIDER,
    DATA_COLLECTION,
    ELEMENTARY_PROVIDER,
    FACADE,
    KIND_COMPOSITE,
    KIND_ELEMENTARY,
    OP_ADD_SERVICE,
    OP_GET_HISTORY,
    OP_GET_INFO,
    OP_GET_READING,
    OP_GET_STATS,
    OP_GET_VALUE,
    OP_LIST_SERVICES,
    OP_REMOVE_SERVICE,
    OP_SET_EXPRESSION,
    SENSOR_DATA_ACCESSOR,
)
from .manager import NetworkModelError, SensorNetworkManager
from .plan import CompositionPlan, PlanEntry
from .provisioner import (
    ProvisionError,
    SensorServiceProvisioner,
    composite_factory,
)
from .variables import variable_index, variable_name

__all__ = [
    "BrowserError",
    "COMPOSITE_PROVIDER",
    "CompositeSensorProvider",
    "CompositionError",
    "CompositionPlan",
    "PlanEntry",
    "DATA_COLLECTION",
    "ELEMENTARY_PROVIDER",
    "ElementarySensorProvider",
    "FACADE",
    "FacadeError",
    "KIND_COMPOSITE",
    "KIND_ELEMENTARY",
    "NetworkModelError",
    "OP_ADD_SERVICE",
    "OP_GET_HISTORY",
    "OP_GET_INFO",
    "OP_GET_READING",
    "OP_GET_STATS",
    "OP_GET_VALUE",
    "OP_LIST_SERVICES",
    "OP_REMOVE_SERVICE",
    "OP_SET_EXPRESSION",
    "ProvisionError",
    "SENSOR_DATA_ACCESSOR",
    "STALE_PATH",
    "SensorBrowser",
    "SensorNetworkManager",
    "SensorReadingEvent",
    "Subscription",
    "SensorServiceProvisioner",
    "SensorcerFacade",
    "composite_factory",
    "variable_index",
    "variable_name",
]
