"""Entry attributes — Jini's typed, matchable service metadata.

A lookup template carries *entry templates*: an entry in the template
matches a candidate entry when the candidate is an instance of the template
entry's class and every non-``None`` template field equals the candidate's
field (``None`` is a wildcard). This is exactly Jini's entry-matching rule
and it is what lets SenSORCER find, say, every temperature sensor in
building "CP TTU" without knowing names.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = [
    "Entry",
    "Name",
    "Comment",
    "Location",
    "ServiceInfo",
    "SensorType",
    "entry_matches",
    "attributes_match",
]


@dataclass(frozen=True)
class Entry:
    """Base class for attribute entries. Subclasses are frozen dataclasses."""

    def matches(self, candidate: "Entry") -> bool:
        return entry_matches(self, candidate)


def entry_matches(template: Entry, candidate: Entry) -> bool:
    """Jini entry matching: class-compatible + non-None fields equal."""
    if not isinstance(candidate, type(template)):
        return False
    for f in fields(template):
        want = getattr(template, f.name)
        if want is not None and getattr(candidate, f.name) != want:
            return False
    return True


def attributes_match(templates, attributes) -> bool:
    """Every template entry must match at least one candidate attribute."""
    for tmpl in templates:
        if not any(entry_matches(tmpl, attr) for attr in attributes):
            return False
    return True


@dataclass(frozen=True)
class Name(Entry):
    """The service's human-readable name (net.jini.lookup.entry.Name)."""

    name: Optional[str] = None


@dataclass(frozen=True)
class Comment(Entry):
    comment: Optional[str] = None


@dataclass(frozen=True)
class Location(Entry):
    """Physical placement, as shown in the paper's Fig 2 entry pane."""

    floor: Optional[str] = None
    room: Optional[str] = None
    building: Optional[str] = None


@dataclass(frozen=True)
class ServiceInfo(Entry):
    name: Optional[str] = None
    manufacturer: Optional[str] = None
    vendor: Optional[str] = None
    version: Optional[str] = None
    model: Optional[str] = None
    serial_number: Optional[str] = None


@dataclass(frozen=True)
class SensorType(Entry):
    """SenSORCER-specific: what a sensor service measures and with what
    technology (lets requestors select by quantity, not by name)."""

    quantity: Optional[str] = None        # "temperature", "humidity", ...
    unit: Optional[str] = None            # "celsius", ...
    technology: Optional[str] = None      # "sunspot", "onewire", ...
    service_kind: Optional[str] = None    # "ELEMENTARY" | "COMPOSITE"
