"""Discovery protocols: how requestors and providers find lookup services.

Mirrors Jini's three protocols on the simulated network:

* **multicast request** — a starting client multicasts probes on the
  discovery group; every LUS unicasts back an announcement;
* **multicast announcement** — every LUS periodically multicasts its
  presence, so late joiners and restarted clients converge;
* **unicast discovery** — :meth:`LookupDiscovery.add_locator` targets a
  known host directly.

One :class:`LookupDiscovery` instance is shared per host (see
:func:`lookup_discovery`), maintaining the set of live registrars and
notifying listeners on discovery/discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..net.host import Host
from ..net.message import Message
from ..net.rpc import RemoteRef

__all__ = [
    "DISCOVERY_GROUP",
    "ANNOUNCE_PORT",
    "PROBE_PORT",
    "LookupDiscovery",
    "lookup_discovery",
]

DISCOVERY_GROUP = "jini.discovery"
#: Port where clients listen for LUS announcements.
ANNOUNCE_PORT = "discovery.announce"
#: Port where lookup services listen for probes.
PROBE_PORT = "discovery.probe"


@dataclass
class _RegistrarInfo:
    lus_id: str
    ref: RemoteRef
    last_seen: float


class LookupDiscovery:
    """Client-side discovery: track live lookup services on this host."""

    #: Default administrative discovery group.
    PUBLIC_GROUP = "public"

    def __init__(self, host: Host,
                 probe_count: int = 3,
                 probe_interval: float = 1.0,
                 announce_timeout: float = 30.0,
                 reap_interval: float = 5.0,
                 groups: tuple = ("public",)):
        self.host = host
        self.env = host.env
        self.probe_count = probe_count
        self.probe_interval = probe_interval
        self.announce_timeout = announce_timeout
        self.reap_interval = reap_interval
        #: Administrative groups of interest: only registrars serving an
        #: overlapping group set are discovered (Jini's group scoping).
        self.groups = frozenset(groups)
        self._registrars: dict[str, _RegistrarInfo] = {}
        #: Hosts targeted by unicast locator discovery: announcements from
        #: them bypass group filtering (Jini locator semantics).
        self._locator_hosts: set[str] = set()
        self._discovered_cbs: list[Callable[[str, RemoteRef], None]] = []
        self._discarded_cbs: list[Callable[[str], None]] = []
        self._started = False
        self._probing = False
        host.join_group(DISCOVERY_GROUP)
        host.open_port(ANNOUNCE_PORT, self._on_announce)

    # -- public API ---------------------------------------------------------

    @property
    def registrars(self) -> dict[str, RemoteRef]:
        """Currently known registrars: lus_id -> proxy."""
        return {lus_id: info.ref for lus_id, info in self._registrars.items()}

    def on_discovered(self, callback: Callable[[str, RemoteRef], None]) -> None:
        self._discovered_cbs.append(callback)

    def on_discarded(self, callback: Callable[[str], None]) -> None:
        self._discarded_cbs.append(callback)

    def start(self) -> None:
        """Begin probing and reaping (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._probe(), name=f"discovery-probe:{self.host.name}")
        self.env.process(self._reaper(), name=f"discovery-reap:{self.host.name}")

    def discard(self, lus_id: str) -> None:
        """Forget a registrar (callers do this after a comm failure); it is
        re-discovered from its next announcement — and we also re-probe
        actively, so a single lost message doesn't cost a whole
        announcement interval."""
        info = self._registrars.pop(lus_id, None)
        if info is not None:
            for cb in list(self._discarded_cbs):
                cb(lus_id)
        self.reprobe()

    def reprobe(self) -> None:
        """Run another multicast probe round (at most one at a time)."""
        if self._started and not self._probing:
            self.env.process(self._probe(),
                             name=f"discovery-reprobe:{self.host.name}")

    def add_locator(self, lus_host: str) -> None:
        """Unicast discovery of a known host (LookupLocator equivalent).

        Locator discovery bypasses group scoping, like Jini's: the caller
        names the host explicitly, so the probe advertises interest in any
        group."""
        self._locator_hosts.add(lus_host)
        if self.host.up:
            self.host.send(lus_host, PROBE_PORT, kind="discovery-probe",
                           payload=(self.host.name, ("*",)))

    # -- internals -----------------------------------------------------------

    def _probe(self):
        self._probing = True
        try:
            for _ in range(self.probe_count):
                if self.host.up:
                    self.host.multicast(DISCOVERY_GROUP, PROBE_PORT,
                                        kind="discovery-probe",
                                        payload=(self.host.name,
                                                 tuple(sorted(self.groups))))
                yield self.env.timeout(self.probe_interval)
        finally:
            self._probing = False

    def _reaper(self):
        while True:
            yield self.env.timeout(self.reap_interval)
            if not self.host.up:
                continue
            cutoff = self.env.now - self.announce_timeout
            stale = [lus_id for lus_id, info in self._registrars.items()
                     if info.last_seen < cutoff]
            for lus_id in stale:
                self.discard(lus_id)

    def _on_announce(self, msg: Message) -> None:
        lus_id, ref, lus_groups = msg.payload
        if (msg.src not in self._locator_hosts
                and "*" not in self.groups
                and not (self.groups & frozenset(lus_groups))):
            return  # a registrar for groups we don't care about
        info = self._registrars.get(lus_id)
        if info is None:
            self._registrars[lus_id] = _RegistrarInfo(lus_id, ref, self.env.now)
            for cb in list(self._discovered_cbs):
                cb(lus_id, ref)
        else:
            info.ref = ref
            info.last_seen = self.env.now


def lookup_discovery(host: Host, **kwargs) -> LookupDiscovery:
    """Shared per-host discovery manager (created on first use)."""
    manager = getattr(host, "_lookup_discovery", None)
    if manager is None:
        manager = LookupDiscovery(host, **kwargs)
        host._lookup_discovery = manager
        manager.start()
    return manager
