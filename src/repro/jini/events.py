"""Distributed events: remote event objects and registrations.

A listener is any exported object with a ``notify(remote_event)`` method;
its :class:`~repro.net.rpc.RemoteRef` is handed to the event source. Event
delivery is at-most-once per event with no ordering guarantee across
sources, but each source stamps a per-registration sequence number so
listeners can detect gaps — Jini semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..net.rpc import RemoteRef
from .lease import Lease

__all__ = [
    "RemoteEvent",
    "ServiceEvent",
    "HealthEvent",
    "EventRegistration",
    "TRANSITION_MATCH_NOMATCH",
    "TRANSITION_NOMATCH_MATCH",
    "TRANSITION_MATCH_MATCH",
]

#: Service was matching the template and no longer is (left / lease lapsed).
TRANSITION_MATCH_NOMATCH = 1
#: Service newly matches (joined the network).
TRANSITION_NOMATCH_MATCH = 2
#: Service still matches but its registration changed (attributes updated).
TRANSITION_MATCH_MATCH = 4

ALL_TRANSITIONS = (TRANSITION_MATCH_NOMATCH | TRANSITION_NOMATCH_MATCH
                   | TRANSITION_MATCH_MATCH)


@dataclass
class RemoteEvent:
    """Base distributed event."""

    source: str          # id of the emitting service
    event_id: int        # registration this event belongs to
    sequence: int        # per-registration monotone counter
    handback: Any = None  # opaque object the listener registered with


@dataclass
class ServiceEvent(RemoteEvent):
    """Lookup-service event: a service transitioned w.r.t. a template."""

    service_id: str = ""
    transition: int = 0
    #: Snapshot of the item after the transition (None for MATCH_NOMATCH).
    item: Any = None


@dataclass
class HealthEvent(RemoteEvent):
    """An SLO alert surfaced as a distributed event (façade-sourced).

    Fired on the firing/resolved edges only; ``t`` is the simulation time
    the alert engine emitted the alert, which may precede delivery."""

    slo: str = ""
    state: str = ""          # "firing" | "resolved"
    signal: Any = None
    threshold: float = 0.0
    t: float = 0.0
    description: str = ""


@dataclass
class EventRegistration:
    """Returned by notify(): identifies the interest and carries its lease."""

    event_id: int
    source: str
    lease: Lease
