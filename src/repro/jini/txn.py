"""Transaction manager — two-phase commit over remote participants.

SORCER's space-based dispatch (Spacer/ExertionSpace) uses transactional
``take`` so an exertion pulled by a worker that dies is restored. The
manager implements the Jini transaction model: ``create`` (leased), remote
participants ``join``, then ``commit`` runs 2PC — every participant votes in
``prepare``, and only a unanimous PREPARED vote proceeds to ``commit``.
A lapsed lease aborts the transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..sim import Interrupt
from .lease import Landlord, Lease

__all__ = ["TransactionManager", "TxnState", "CannotCommitError",
           "UnknownTransactionError", "CreatedTransaction", "Vote"]


class TxnState(Enum):
    ACTIVE = "active"
    VOTING = "voting"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Vote(Enum):
    PREPARED = "prepared"
    NOTCHANGED = "notchanged"   # read-only participant, skip phase 2
    ABORTED = "aborted"


class CannotCommitError(Exception):
    """Commit failed; the transaction was aborted."""


class UnknownTransactionError(Exception):
    pass


@dataclass
class CreatedTransaction:
    txn_id: int
    lease: Lease


class _Txn:
    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.participants: list[RemoteRef] = []


class TransactionManager:
    """Mahalo-equivalent transaction manager service."""

    REMOTE_TYPES = ("TransactionManager",)
    REMOTE_METHODS = ("create", "join", "commit", "abort", "get_state",
                      "renew_lease", "cancel_lease")

    def __init__(self, host: Host, max_lease: float = 300.0,
                 sweep_interval: float = 1.0):
        self.host = host
        self.env = host.env
        self._endpoint = rpc_endpoint(host)
        self._txns: dict[int, _Txn] = {}
        self._landlord = Landlord(host.env, max_duration=max_lease,
                                  on_expire=self._on_lease_expired)
        self.ref = self._endpoint.export(self, f"txnmgr:{host.name}",
                                         methods=self.REMOTE_METHODS)
        host.env.process(self._landlord.sweeper(sweep_interval),
                         name=f"txn-sweep:{host.name}")

    # -- remote API -------------------------------------------------------------

    def create(self, lease_duration: float = 60.0) -> CreatedTransaction:
        txn_id = self.host.network.ids.sequence()
        self._txns[txn_id] = _Txn(txn_id)
        lease = self._landlord.grant(txn_id, lease_duration)
        return CreatedTransaction(txn_id=txn_id, lease=lease)

    def join(self, txn_id: int, participant: RemoteRef) -> None:
        txn = self._require(txn_id)
        if txn.state is not TxnState.ACTIVE:
            raise CannotCommitError(f"txn {txn_id} is {txn.state.value}")
        if participant not in txn.participants:
            txn.participants.append(participant)

    def commit(self, txn_id: int):
        """2PC; a generator executed as a process by the RPC layer."""
        txn = self._require(txn_id)
        if txn.state is not TxnState.ACTIVE:
            raise CannotCommitError(f"txn {txn_id} is {txn.state.value}")
        txn.state = TxnState.VOTING
        votes = []
        for participant in txn.participants:
            try:
                vote = yield self._endpoint.call(
                    participant, "prepare", txn_id, kind="txn-prepare",
                    timeout=3.0)
            except Interrupt:
                raise
            except Exception:
                vote = Vote.ABORTED
            votes.append((participant, vote))
            if vote is Vote.ABORTED:
                break
        if any(vote is Vote.ABORTED for _, vote in votes):
            yield from self._abort_participants(txn)
            txn.state = TxnState.ABORTED
            raise CannotCommitError(f"txn {txn_id}: a participant voted abort")
        for participant, vote in votes:
            if vote is Vote.NOTCHANGED:
                continue
            try:
                yield self._endpoint.call(participant, "commit", txn_id,
                                          kind="txn-commit", timeout=3.0)
            except Interrupt:
                raise
            except Exception:
                # Phase-2 failures cannot roll back; real managers retry
                # until durable. We retry once, then give up (participant
                # crash loses its changes — acceptable for this model).
                pass
        txn.state = TxnState.COMMITTED
        return TxnState.COMMITTED

    def abort(self, txn_id: int):
        txn = self._require(txn_id)
        if txn.state in (TxnState.COMMITTED,):
            raise CannotCommitError(f"txn {txn_id} already committed")
        yield from self._abort_participants(txn)
        txn.state = TxnState.ABORTED
        return TxnState.ABORTED

    def get_state(self, txn_id: int) -> TxnState:
        return self._require(txn_id).state

    def renew_lease(self, lease_id: int, duration: float) -> Lease:
        return self._landlord.renew(lease_id, duration)

    def cancel_lease(self, lease_id: int) -> None:
        self._landlord.cancel(lease_id)

    # -- internals ------------------------------------------------------------------

    def _require(self, txn_id: int) -> _Txn:
        txn = self._txns.get(txn_id)
        if txn is None:
            raise UnknownTransactionError(f"unknown txn {txn_id}")
        return txn

    def _abort_participants(self, txn: _Txn):
        for participant in txn.participants:
            try:
                yield self._endpoint.call(participant, "abort", txn.txn_id,
                                          kind="txn-abort", timeout=3.0)
            except Interrupt:
                raise
            except Exception:
                pass

    def _on_lease_expired(self, txn_id: int) -> None:
        txn = self._txns.get(txn_id)
        if txn is not None and txn.state is TxnState.ACTIVE:
            self.env.process(self._expire_abort(txn),
                             name=f"txn-expire:{txn_id}")

    def _expire_abort(self, txn: _Txn):
        yield from self._abort_participants(txn)
        txn.state = TxnState.ABORTED
