"""Lease renewal service — renews leases on behalf of clients.

A device that sleeps (a duty-cycled sensor, say) cannot renew its own
registration leases; it delegates them to this always-on service. Part of
the Fig 2 infrastructure inventory ("Lease Renewal Service").

A transient network failure must not lose a lease the service was trusted
with: failed renewals are retried with jittered exponential backoff for as
long as the lease still has time left. Only a definitive refusal from the
grantor (it answered and said no — the lease is gone) or actual expiry
gives up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.errors import NetworkError, RemoteError
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability import metrics_registry
from ..resilience import RetryPolicy, backoff_rng, resilience_events
from .lease import Lease

__all__ = ["LeaseRenewalService"]


@dataclass
class _ManagedLease:
    set_id: str
    grantor: RemoteRef
    lease: Lease
    renew_duration: float
    until: float
    alive: bool = True


class LeaseRenewalService:
    """Norm-equivalent service: clients hand over leases for safe keeping."""

    REMOTE_TYPES = ("LeaseRenewalService",)
    REMOTE_METHODS = ("create_set", "add_lease", "remove_set")

    #: Backoff between failed renewal attempts; capped well below typical
    #: lease durations so several retries fit before expiry.
    RETRY_POLICY = RetryPolicy(base_delay=0.25, multiplier=2.0,
                               max_delay=4.0, jitter=0.5)

    def __init__(self, host: Host, check_interval: float = 1.0):
        self.host = host
        self.env = host.env
        self._endpoint = rpc_endpoint(host)
        self._sets: dict[str, list[_ManagedLease]] = {}
        self.check_interval = check_interval
        self.events = resilience_events(host.network)
        registry = metrics_registry(host.network)
        self._m_renewed = registry.counter("lease.renewed", host=host.name)
        self._m_lost = registry.counter("lease.lost", host=host.name)
        self._rng = backoff_rng(host.name, salt=2)
        self.ref = self._endpoint.export(self, f"norm:{host.name}",
                                         methods=self.REMOTE_METHODS)

    # -- remote API -------------------------------------------------------------

    def create_set(self, duration: float = 3600.0) -> str:
        set_id = self.host.network.ids.uuid()
        self._sets[set_id] = []
        self.env.process(self._expire_set(set_id, duration),
                         name=f"norm-set:{set_id[:8]}")
        return set_id

    def add_lease(self, set_id: str, grantor: RemoteRef, lease: Lease,
                  renew_duration: float, until: float) -> None:
        if set_id not in self._sets:
            raise KeyError(f"unknown renewal set {set_id!r}")
        managed = _ManagedLease(set_id, grantor, lease, renew_duration, until)
        self._sets[set_id].append(managed)
        self.env.process(self._renewal_loop(managed),
                         name=f"norm-renew:{lease.lease_id}")

    def remove_set(self, set_id: str) -> None:
        for managed in self._sets.pop(set_id, []):
            managed.alive = False

    # -- internals ------------------------------------------------------------------

    def _expire_set(self, set_id: str, duration: float):
        yield self.env.timeout(duration)
        self.remove_set(set_id)

    def _renewal_loop(self, managed: _ManagedLease):
        failures = 0
        while managed.alive and self.env.now < managed.until:
            if failures == 0:
                wait = max(0.1, managed.lease.remaining(self.env.now) / 2)
            else:
                # Transient failure: back off, but never past the lease's
                # own expiry (a retry after expiry is pointless).
                wait = min(self.RETRY_POLICY.delay(failures - 1, self._rng),
                           max(0.05, managed.lease.remaining(self.env.now)))
                self.events.emit("retry_scheduled", kind="lease-renewal",
                                 lease=managed.lease.lease_id,
                                 attempt=failures, delay=round(wait, 6))
            yield self.env.timeout(wait)
            if not managed.alive or self.env.now >= managed.until:
                return
            if not self.host.up:
                continue
            try:
                managed.lease = yield self._endpoint.call(
                    managed.grantor, "renew_lease", managed.lease.lease_id,
                    managed.renew_duration, timeout=3.0)
                failures = 0
                self._m_renewed.inc()
            except RemoteError:
                # The grantor answered and refused: the lease is truly gone.
                managed.alive = False
                self._m_lost.inc()
                self.events.emit("lease_lost", lease=managed.lease.lease_id)
            except NetworkError:
                failures += 1
                if managed.lease.remaining(self.env.now) <= 0:
                    managed.alive = False  # expired while unreachable
                    self._m_lost.inc()
                    self.events.emit("lease_lost",
                                     lease=managed.lease.lease_id)
