"""Lease renewal service — renews leases on behalf of clients.

A device that sleeps (a duty-cycled sensor, say) cannot renew its own
registration leases; it delegates them to this always-on service. Part of
the Fig 2 infrastructure inventory ("Lease Renewal Service").

A transient network failure must not lose a lease the service was trusted
with: failed renewals are retried with jittered exponential backoff for as
long as the lease still has time left. Only a definitive refusal from the
grantor (it answered and said no — the lease is gone) or actual expiry
gives up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.errors import NetworkError, RemoteError
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability import metrics_registry
from ..resilience import RetryPolicy, backoff_rng, resilience_events
from ..snapshot.registry import register_participant
from .lease import Lease

__all__ = ["LeaseRenewalService"]


@dataclass
class _ManagedLease:
    set_id: str
    grantor: RemoteRef
    lease: Lease
    renew_duration: float
    until: float
    alive: bool = True
    #: Consecutive failed renewal attempts (drives the backoff).
    failures: int = 0
    #: Earliest sim time the next attempt may run (backoff gate).
    next_attempt: float = 0.0


class LeaseRenewalService:
    """Norm-equivalent service: clients hand over leases for safe keeping."""

    REMOTE_TYPES = ("LeaseRenewalService",)
    REMOTE_METHODS = ("create_set", "add_lease", "remove_set")

    #: Backoff between failed renewal attempts; capped well below typical
    #: lease durations so several retries fit before expiry.
    RETRY_POLICY = RetryPolicy(base_delay=0.25, multiplier=2.0,
                               max_delay=4.0, jitter=0.5)

    def __init__(self, host: Host, check_interval: float = 1.0):
        self.host = host
        self.env = host.env
        self._endpoint = rpc_endpoint(host)
        self._sets: dict[str, list[_ManagedLease]] = {}
        self.check_interval = check_interval
        #: One sweep timer per check window services *all* managed leases —
        #: the sweeper is spawned lazily on the first add_lease and parks on
        #: this event whenever the managed set drains, so an idle service
        #: costs zero kernel events.
        self._sweeping = False
        self._stirred = None
        self.events = resilience_events(host.network)
        registry = metrics_registry(host.network)
        self._m_renewed = registry.counter("lease.renewed", host=host.name)
        self._m_lost = registry.counter("lease.lost", host=host.name)
        self._rng = backoff_rng(host.name, salt=2)
        self.ref = self._endpoint.export(self, f"norm:{host.name}",
                                         methods=self.REMOTE_METHODS)
        register_participant(host.env, f"jini.norm.{host.name}",
                             self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: every managed lease, including ones mid-backoff
        after a failed renewal — restore must retry them on schedule."""
        return {
            "sets": {set_id: [{
                "alive": managed.alive,
                "expiration": managed.lease.expiration,
                "failures": managed.failures,
                "lease_id": managed.lease.lease_id,
                "next_attempt": managed.next_attempt,
                "renew_duration": managed.renew_duration,
                "until": managed.until,
            } for managed in managed_list]
                for set_id, managed_list in sorted(self._sets.items())},
            "sweeping": self._sweeping,
        }

    # -- remote API -------------------------------------------------------------

    def create_set(self, duration: float = 3600.0) -> str:
        set_id = self.host.network.ids.uuid()
        self._sets[set_id] = []
        self.env.process(self._expire_set(set_id, duration),
                         name=f"norm-set:{set_id[:8]}")
        return set_id

    def add_lease(self, set_id: str, grantor: RemoteRef, lease: Lease,
                  renew_duration: float, until: float) -> None:
        if set_id not in self._sets:
            raise KeyError(f"unknown renewal set {set_id!r}")
        managed = _ManagedLease(set_id, grantor, lease, renew_duration, until)
        self._sets[set_id].append(managed)
        if not self._sweeping:
            self._sweeping = True
            self.env.process(self._sweep_loop(),
                             name=f"norm-sweep:{self.host.name}")
        elif self._stirred is not None and not self._stirred.triggered:
            self._stirred.succeed()

    def remove_set(self, set_id: str) -> None:
        for managed in self._sets.pop(set_id, []):
            managed.alive = False

    # -- internals ------------------------------------------------------------------

    def _expire_set(self, set_id: str, duration: float):
        yield self.env.timeout(duration)
        self.remove_set(set_id)

    def _due(self, managed: _ManagedLease, now: float) -> bool:
        if now < managed.next_attempt:
            return False  # still backing off after a transient failure
        remaining = managed.lease.remaining(now)
        # Renew once past the lease's halfway point, or when the next sweep
        # window might come too late — whichever margin is wider.
        return remaining <= max(managed.lease.duration / 2,
                                1.5 * self.check_interval)

    def _lost(self, managed: _ManagedLease) -> None:
        managed.alive = False
        self._m_lost.inc()
        self.events.emit("lease_lost", lease=managed.lease.lease_id)

    def _sweep_loop(self):
        """One timer event per check window renews every due lease.

        The pre-batching design ran one recurring timer process per managed
        lease — O(leases) pending kernel events at all times. A fleet of
        duty-cycled sensors delegating 10k leases is exactly the workload
        this service exists for, so the sweep batches all of them behind a
        single ``check_interval`` timer and parks entirely while it has
        nothing to manage.
        """
        while True:
            now = self.env.now
            for set_id, leases in self._sets.items():
                if any(not m.alive or now >= m.until for m in leases):
                    self._sets[set_id] = [
                        m for m in leases if m.alive and now < m.until]
            if not any(self._sets.values()):
                self._stirred = self.env.event()
                yield self._stirred
                self._stirred = None
                continue
            yield self.env.timeout(self.check_interval)
            if not self.host.up:
                continue
            # Snapshot: renewals yield (RPC), and add_lease may append
            # mid-sweep; new arrivals wait for the next window.
            batch = [m for leases in self._sets.values() for m in leases]
            for managed in batch:
                now = self.env.now
                if not managed.alive or now >= managed.until:
                    continue
                if not self._due(managed, now):
                    continue
                if managed.lease.remaining(now) <= 0:
                    self._lost(managed)  # expired while unreachable/backing off
                    continue
                try:
                    managed.lease = yield self._endpoint.call(
                        managed.grantor, "renew_lease",
                        managed.lease.lease_id,
                        managed.renew_duration, timeout=3.0)
                    managed.failures = 0
                    self._m_renewed.inc()
                except RemoteError:
                    # The grantor answered and refused: the lease is gone.
                    self._lost(managed)
                except NetworkError:
                    managed.failures += 1
                    if managed.lease.remaining(self.env.now) <= 0:
                        self._lost(managed)  # expired while unreachable
                        continue
                    # Transient failure: back off, but never past the
                    # lease's own expiry (a retry after expiry is
                    # pointless).
                    delay = min(
                        self.RETRY_POLICY.delay(managed.failures - 1,
                                                self._rng),
                        max(0.05, managed.lease.remaining(self.env.now)))
                    managed.next_attempt = self.env.now + delay
                    self.events.emit("retry_scheduled", op="lease-renewal",
                                     lease=managed.lease.lease_id,
                                     attempt=managed.failures,
                                     delay=round(delay, 6))
