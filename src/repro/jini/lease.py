"""Leases — Jini's time-bounded resource grants.

Everything a Jini service hands out (registrations, event interest,
transactions, space entries) is leased: the grantor promises the resource
only until ``expiration`` and the holder must renew. When a holder dies, its
leases lapse and the grantor reclaims the resource — this is the mechanism
the paper credits for keeping the sensor network "healthy and robust"
(§IV.B).

:class:`Landlord` is the grantor-side bookkeeping (the name comes from
Jini's landlord lease paradigm); :class:`Lease` is the serializable
holder-side handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Environment

__all__ = ["Lease", "Landlord", "LeaseDeniedError", "UnknownLeaseError", "FOREVER"]

#: Request duration meaning "as long as you'll give me".
FOREVER = float("inf")


class LeaseDeniedError(Exception):
    """Grantor refused to grant or renew a lease."""


class UnknownLeaseError(Exception):
    """Lease id is not (or no longer) known to the grantor."""


@dataclass
class Lease:
    """Holder-side lease handle (pure data; renewal goes through the grantor)."""

    lease_id: int
    expiration: float
    duration: float

    def remaining(self, now: float) -> float:
        return max(0.0, self.expiration - now)

    def is_expired(self, now: float) -> bool:
        return now >= self.expiration


@dataclass
class _LeaseRecord:
    lease_id: int
    resource_id: Any
    expiration: float
    duration: float = 0.0  # last granted duration (liveness baseline)


class Landlord:
    """Grantor-side lease table.

    The owner supplies ``on_expire(resource_id)`` which is invoked by
    :meth:`reap` for every lapsed lease — that is where a lookup service
    deregisters the service, an event registration is dropped, etc.
    """

    def __init__(self, env: Environment,
                 max_duration: float = 300.0,
                 on_expire: Optional[Callable[[Any], None]] = None):
        self.env = env
        self.max_duration = max_duration
        self.on_expire = on_expire
        self._leases: dict[int, _LeaseRecord] = {}
        self._next_id = 1
        #: Parked sweeper's wakeup event (None while the sweeper is ticking
        #: or absent). Triggered by :meth:`grant`, the only way an empty
        #: lease table can become non-empty.
        self._stirred = None

    def __len__(self) -> int:
        return len(self._leases)

    def checkpoint_state(self) -> dict:
        """Snapshot section fragment: the full lease table.

        Includes leases that have lapsed but not yet been reaped — the
        restore contract requires the sweeper in a restored run to reap
        exactly what the original run's sweeper would have."""
        return {
            "leases": [{
                "duration": record.duration,
                "expiration": record.expiration,
                "lease_id": record.lease_id,
                "resource": repr(record.resource_id),
            } for _, record in sorted(self._leases.items())],
            "next_id": self._next_id,
        }

    def _clamp(self, duration: float) -> float:
        if duration <= 0:
            raise LeaseDeniedError(f"non-positive lease duration {duration}")
        return min(duration, self.max_duration)

    def grant(self, resource_id: Any, duration: float) -> Lease:
        duration = self._clamp(duration)
        lease_id = self._next_id
        self._next_id += 1
        record = _LeaseRecord(lease_id, resource_id, self.env.now + duration,
                              duration)
        self._leases[lease_id] = record
        if self._stirred is not None and not self._stirred.triggered:
            self._stirred.succeed()
        return Lease(lease_id=lease_id, expiration=record.expiration,
                     duration=duration)

    def renew(self, lease_id: int, duration: float) -> Lease:
        record = self._leases.get(lease_id)
        if record is None:
            raise UnknownLeaseError(f"lease {lease_id} unknown or expired")
        if record.expiration <= self.env.now:
            # Lapsed but not yet reaped: treat as gone.
            self._expire(record)
            raise UnknownLeaseError(f"lease {lease_id} already expired")
        duration = self._clamp(duration)
        record.expiration = self.env.now + duration
        record.duration = duration
        return Lease(lease_id=lease_id, expiration=record.expiration,
                     duration=duration)

    def cancel(self, lease_id: int) -> Any:
        """Cancel and return the resource id (without firing on_expire)."""
        record = self._leases.pop(lease_id, None)
        if record is None:
            raise UnknownLeaseError(f"lease {lease_id} unknown")
        return record.resource_id

    def resource_of(self, lease_id: int) -> Any:
        record = self._leases.get(lease_id)
        if record is None:
            raise UnknownLeaseError(f"lease {lease_id} unknown")
        return record.resource_id

    def is_active(self, lease_id: int) -> bool:
        record = self._leases.get(lease_id)
        return record is not None and record.expiration > self.env.now

    def clear(self) -> None:
        """Drop all leases without firing ``on_expire`` (process death)."""
        self._leases.clear()

    def force_expire(self, lease_id: int) -> bool:
        """Lapse a lease *now* (fault injection / admin eviction): the next
        :meth:`reap` fires ``on_expire`` exactly as a missed renewal would.
        Returns False for an unknown lease."""
        record = self._leases.get(lease_id)
        if record is None:
            return False
        record.expiration = self.env.now
        return True

    def reap(self) -> list[Any]:
        """Expire all lapsed leases; returns their resource ids."""
        now = self.env.now
        lapsed = [r for r in self._leases.values() if r.expiration <= now]
        expired_resources = []
        for record in lapsed:
            self._expire(record)
            expired_resources.append(record.resource_id)
        return expired_resources

    def _expire(self, record: _LeaseRecord) -> None:
        self._leases.pop(record.lease_id, None)
        if self.on_expire is not None:
            self.on_expire(record.resource_id)

    def sweeper(self, interval: float):
        """A kernel process that reaps periodically; run it with
        ``env.process(landlord.sweeper(1.0))``.

        While the lease table is empty the sweeper parks on an event that
        :meth:`grant` triggers, instead of ticking uselessly — with one
        sub-landlord per ESP, a 16k-sensor fleet would otherwise spend 16k
        kernel events per simulated second reaping nothing. On wake-up it
        re-aligns to the tick grid the always-on sweeper would be on
        (repeated ``+= interval`` from the last tick, matching how
        consecutive ``timeout(interval)`` wakeups accumulate) so reap
        timestamps are unchanged by the optimization.
        """
        tick = self.env.now
        while True:
            if not self._leases:
                self._stirred = self.env.event()
                yield self._stirred
                self._stirred = None
                now = self.env.now
                tick += interval
                while tick <= now:
                    tick += interval
                yield self.env.timeout(tick - now)
            else:
                yield self.env.timeout(interval)
                tick = self.env.now
            self.reap()
