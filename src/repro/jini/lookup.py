"""The lookup service (LUS) — Jini's service registry.

Providers register :class:`~repro.jini.template.ServiceItem`s under leases;
requestors look up by :class:`~repro.jini.template.ServiceTemplate`;
interested parties register event listeners that are told when services
arrive, leave or change. The LUS answers discovery probes and multicasts
periodic announcements.

Crash semantics: LUS state is in-memory, so a host crash wipes the registry
(as a JVM death would). When the host recovers the LUS resumes announcing
empty; join managers re-register on rediscovery — this is the self-healing
behaviour the paper relies on (§VII "plug-and-play").
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.host import Host
from ..net.message import Message
from ..net.rpc import RemoteRef, rpc_endpoint
from ..sim import Interrupt
from ..sim import sanitizer as _san
from ..snapshot.registry import register_participant
from .discovery import ANNOUNCE_PORT, DISCOVERY_GROUP, PROBE_PORT
from .events import (
    ALL_TRANSITIONS,
    EventRegistration,
    ServiceEvent,
    TRANSITION_MATCH_MATCH,
    TRANSITION_MATCH_NOMATCH,
    TRANSITION_NOMATCH_MATCH,
)
from .lease import Landlord, Lease, UnknownLeaseError
from .template import ServiceItem, ServiceTemplate

__all__ = ["LookupService", "ServiceRegistration"]


class ServiceRegistration:
    """Returned by :meth:`LookupService.register`."""

    def __init__(self, service_id: str, lease: Lease, lus_id: str):
        self.service_id = service_id
        self.lease = lease
        self.lus_id = lus_id


class _Interest:
    """One event registration: template + transitions + listener."""

    def __init__(self, event_id: int, template: ServiceTemplate,
                 transitions: int, listener: RemoteRef, handback: Any):
        self.event_id = event_id
        self.template = template
        self.transitions = transitions
        self.listener = listener
        self.handback = handback
        self.sequence = 0


class LookupService:
    """A lookup service living on one simulated host."""

    REMOTE_TYPES = ("ServiceRegistrar",)

    #: Remote methods callable through the proxy.
    REMOTE_METHODS = ("register", "renew_lease", "cancel_lease", "lookup",
                      "lookup_all", "notify", "cancel_notify", "service_ids",
                      "registrations")

    def __init__(self, host: Host, name: str = "Lookup Service",
                 max_lease: float = 300.0,
                 sweep_interval: float = 1.0,
                 announce_interval: float = 10.0,
                 groups: tuple = ("public",)):
        self.host = host
        self.env = host.env
        self.name = name
        self.lus_id = host.network.ids.uuid()
        self.announce_interval = announce_interval
        #: Administrative groups this registrar serves (Jini group scoping).
        self.groups = frozenset(groups)
        self._items: dict[str, ServiceItem] = {}
        self._interests: dict[int, _Interest] = {}
        # One landlord, resources tagged ("reg", service_id) / ("event", event_id).
        self._landlord = Landlord(host.env, max_duration=max_lease,
                                  on_expire=self._on_lease_expired)
        self._lease_of_service: dict[str, int] = {}
        self._sweep_interval = sweep_interval
        endpoint = rpc_endpoint(host)
        self.ref = endpoint.export(self, f"lus:{self.lus_id}",
                                   methods=self.REMOTE_METHODS)
        self._started = False
        host.on_fail(self._on_host_fail)
        register_participant(host.env, f"jini.lus.{self.lus_id}",
                             self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: registry contents, interests, lease table."""
        return {
            "host": self.host.name,
            "interests": [{
                "event_id": interest.event_id,
                "sequence": interest.sequence,
                "transitions": interest.transitions,
            } for _, interest in sorted(self._interests.items())],
            "items": {service_id: item.name()
                      for service_id, item in sorted(self._items.items())},
            "landlord": self._landlord.checkpoint_state(),
            "lease_of_service": dict(sorted(
                self._lease_of_service.items())),
            "name": self.name,
            "started": self._started,
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        # Announce ourselves to the management plane: the health monitor
        # derives liveness from whichever LUSs the network runs.
        luses = getattr(self.host.network, "_lookup_services", None)
        if luses is None:
            luses = []
            self.host.network._lookup_services = luses
        if self not in luses:
            luses.append(self)
        self.host.join_group(DISCOVERY_GROUP)
        self.host.open_port(PROBE_PORT, self._on_probe)
        self.env.process(self._landlord.sweeper(self._sweep_interval),
                         name=f"lus-sweep:{self.lus_id[:8]}")
        self.env.process(self._announcer(), name=f"lus-announce:{self.lus_id[:8]}")

    def expire_registrations(self, name: Optional[str] = None) -> int:
        """Admin/chaos hook: lapse the lease of every registration whose
        service name matches ``name`` (all of them when ``None``). The
        sweeper then reaps them exactly like missed renewals — the holder
        sees ``UnknownLeaseError`` on its next renew and re-registers.
        Returns the number of leases lapsed."""
        count = 0
        for service_id, item in sorted(self._items.items()):
            if name is not None and item.name() != name:
                continue
            lease_id = self._lease_of_service.get(service_id)
            if lease_id is not None and self._landlord.force_expire(lease_id):
                count += 1
        return count

    def _announce_payload(self):
        return (self.lus_id, self.ref, tuple(sorted(self.groups)))

    def _announcer(self):
        while True:
            if self.host.up:
                self.host.multicast(DISCOVERY_GROUP, ANNOUNCE_PORT,
                                    kind="discovery-announce",
                                    payload=self._announce_payload())
            yield self.env.timeout(self.announce_interval)

    def _on_probe(self, msg: Message) -> None:
        requester, requester_groups = msg.payload
        wanted = frozenset(requester_groups)
        if "*" not in wanted and not (wanted & self.groups):
            return  # the prober is not interested in our groups
        if self.host.up:
            self.host.send(requester, ANNOUNCE_PORT, kind="discovery-announce",
                           payload=self._announce_payload())

    def _on_host_fail(self, host: Host) -> None:
        # In-memory registry dies with the process.
        self._items.clear()
        self._lease_of_service.clear()
        self._interests.clear()
        self._landlord.clear()

    # -- remote API -------------------------------------------------------------

    def _record_access(self, kind: str) -> None:
        """Report a registry read/write to the race sanitizer. The whole
        item table is one key: a same-timestamp register racing any lookup
        genuinely makes the lookup's answer tie-break dependent."""
        if _san._active is not None:
            _san._active.record(("lus", self.lus_id), kind,
                                f"lookup registry of {self.name!r}")

    def register(self, item: ServiceItem, lease_duration: float) -> ServiceRegistration:
        """Register (or re-register) a service item."""
        if not item.service_id:
            raise ValueError("ServiceItem.service_id must be set")
        self._record_access("w")
        previous = self._items.get(item.service_id)
        # Replace any existing lease for this service.
        old_lease_id = self._lease_of_service.pop(item.service_id, None)
        if old_lease_id is not None:
            try:
                self._landlord.cancel(old_lease_id)
            except UnknownLeaseError:
                pass
        lease = self._landlord.grant(("reg", item.service_id), lease_duration)
        self._lease_of_service[item.service_id] = lease.lease_id
        self._items[item.service_id] = item
        self._fire_transitions(previous, item)
        return ServiceRegistration(item.service_id, lease, self.lus_id)

    def renew_lease(self, lease_id: int, duration: float) -> Lease:
        return self._landlord.renew(lease_id, duration)

    def cancel_lease(self, lease_id: int) -> None:
        resource = self._landlord.cancel(lease_id)
        self._release_resource(resource, expired=False)

    def lookup(self, template: ServiceTemplate,
               max_matches: int = 1) -> list[ServiceItem]:
        """Return up to ``max_matches`` matching items (registration order)."""
        self._record_access("r")
        if template.service_id is not None:
            # Exact-id template: the item table is keyed by service id, so
            # answer from the index. This is the resolver hot path — every
            # composite child resolution names its child's exact id, and a
            # registry scan here makes one fleet query O(N * children).
            item = self._items.get(template.service_id)
            if item is not None and template.matches(item):
                return [item]
            return []
        out = []
        for item in self._items.values():
            if template.matches(item):
                out.append(item)
                if len(out) >= max_matches:
                    break
        return out

    def lookup_all(self, template: Optional[ServiceTemplate] = None) -> list[ServiceItem]:
        self._record_access("r")
        if template is None:
            return list(self._items.values())
        return [item for item in self._items.values() if template.matches(item)]

    def service_ids(self) -> list[str]:
        return list(self._items.keys())

    def registrations(self) -> list[dict]:
        """Admin view: every registration with its lease state (the data
        behind the Inca X Admin tab of the paper's Fig 2)."""
        out = []
        for service_id, item in self._items.items():
            lease_id = self._lease_of_service.get(service_id)
            expires = duration = None
            if lease_id is not None:
                record = self._landlord._leases.get(lease_id)
                if record is not None:
                    expires = record.expiration
                    duration = record.duration
            out.append({
                "service_id": service_id,
                "name": item.name(),
                "host": item.service.host,
                "lease_expires_at": expires,
                "lease_remaining": (None if expires is None
                                    else max(0.0, expires - self.env.now)),
                "lease_duration": duration,
            })
        return out

    def notify(self, template: ServiceTemplate, transitions: int,
               listener: RemoteRef, handback: Any = None,
               lease_duration: float = 300.0) -> EventRegistration:
        """Register interest in service transitions w.r.t. ``template``."""
        event_id = self.host.network.ids.sequence()
        interest = _Interest(event_id, template, transitions, listener, handback)
        self._interests[event_id] = interest
        lease = self._landlord.grant(("event", event_id), lease_duration)
        return EventRegistration(event_id=event_id, source=self.lus_id, lease=lease)

    def cancel_notify(self, event_id: int) -> None:
        self._interests.pop(event_id, None)

    # -- internals ------------------------------------------------------------------

    def _on_lease_expired(self, resource) -> None:
        self._release_resource(resource, expired=True)

    def _release_resource(self, resource, expired: bool) -> None:
        kind, key = resource
        if kind == "reg":
            self._record_access("w")
            self._lease_of_service.pop(key, None)
            item = self._items.pop(key, None)
            if item is not None:
                # Expiry means the holder went silent (crash/partition);
                # cancellation is a graceful goodbye. The health model
                # treats the two very differently, so say which it was.
                from ..resilience.events import resilience_events
                resilience_events(self.host.network).emit(
                    "lease_expired" if expired else "service_deregistered",
                    service=item.name() or key[:8], service_id=key,
                    host=item.service.host, lus=self.lus_id)
                self._fire_transitions(item, None)
        elif kind == "event":
            self._interests.pop(key, None)

    def _fire_transitions(self, before: Optional[ServiceItem],
                          after: Optional[ServiceItem]) -> None:
        # Interests fire in registration order (insertion-ordered dict).
        for interest in list(  # repro: allow[DET003]
                self._interests.values()):
            was = before is not None and interest.template.matches(before)
            now = after is not None and interest.template.matches(after)
            if was and not now:
                transition = TRANSITION_MATCH_NOMATCH
            elif not was and now:
                transition = TRANSITION_NOMATCH_MATCH
            elif was and now:
                transition = TRANSITION_MATCH_MATCH
            else:
                continue
            if not (interest.transitions & transition):
                continue
            interest.sequence += 1
            service_id = (after or before).service_id
            event = ServiceEvent(
                source=self.lus_id, event_id=interest.event_id,
                sequence=interest.sequence, handback=interest.handback,
                service_id=service_id, transition=transition, item=after)
            self.env.process(self._deliver(interest, event),
                             name=f"lus-notify:{service_id[:8]}")

    def _deliver(self, interest: _Interest, event: ServiceEvent):
        if not self.host.up:
            return
        endpoint = rpc_endpoint(self.host)
        try:
            yield endpoint.call(interest.listener, "notify", event,
                                kind="service-event", timeout=3.0)
        except Interrupt:
            raise
        except Exception:
            # Unreachable listener: Jini drops the event; the lease mechanism
            # eventually reaps dead registrations.
            pass
