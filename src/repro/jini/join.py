"""Join manager — keeps a service registered with every discovered LUS.

The provider-side half of Jini's discovery/join: register with each newly
discovered registrar, renew leases before they lapse, re-register after a
LUS restart (its in-memory registry is gone, so a renew fails and we fall
back to a fresh register), and cancel everything on graceful termination.

This is what gives SenSORCER services their "come and go" plug-and-play
behaviour: a crashed sensor service simply stops renewing and the network
forgets it; a started one becomes visible within a probe round-trip.
"""

from __future__ import annotations


from ..net.errors import NetworkError, RemoteError
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..sim import Interrupt
from .discovery import LookupDiscovery, lookup_discovery
from .lease import Lease
from .template import ServiceItem

__all__ = ["JoinManager"]


class _Registration:
    def __init__(self, lus_ref: RemoteRef, lease: Lease):
        self.lus_ref = lus_ref
        self.lease = lease


class JoinManager:
    """Maintains registrations of one service item across all LUSs."""

    def __init__(self, host: Host, item: ServiceItem,
                 lease_duration: float = 30.0,
                 maintenance_interval: float = 2.0):
        if not item.service_id:
            raise ValueError("service item needs a service_id before joining")
        self.host = host
        self.env = host.env
        self.item = item
        self.lease_duration = lease_duration
        self.maintenance_interval = maintenance_interval
        self.discovery: LookupDiscovery = lookup_discovery(host)
        self._endpoint = rpc_endpoint(host)
        self._registrations: dict[str, _Registration] = {}
        self._active = False
        self._proc = None

    # -- public API -------------------------------------------------------------

    @property
    def registered_with(self) -> list[str]:
        """LUS ids this service currently holds a live lease on."""
        return [lus_id for lus_id, reg in self._registrations.items()
                if not reg.lease.is_expired(self.env.now)]

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self.discovery.on_discovered(self._on_discovered)
        self.discovery.on_discarded(self._on_discarded)
        self._proc = self.env.process(self._maintain(),
                                      name=f"join:{self.item.service_id[:8]}")

    def terminate(self):
        """Gracefully leave the network: cancel all leases (best effort).

        A generator — run it as a process: ``yield env.process(jm.terminate())``.
        """
        self._active = False
        # Cancellation goes out in registration order (insertion-ordered dict).
        for lus_id, reg in list(  # repro: allow[DET003]
                self._registrations.items()):
            try:
                yield self._endpoint.call(reg.lus_ref, "cancel_lease",
                                          reg.lease.lease_id, timeout=2.0)
            except Interrupt:
                raise
            except Exception:
                pass
        self._registrations.clear()

    def update_attributes(self, attributes) -> None:
        """Replace the item's attribute set and push it to every LUS as a
        re-registration (observers see a MATCH_MATCH event)."""
        self.item = self.item.with_attributes(attributes)
        # Re-registration in registration order (insertion-ordered dict).
        for lus_id, reg in list(  # repro: allow[DET003]
                self._registrations.items()):
            self._registrations.pop(lus_id, None)
            self.env.process(self._register(lus_id, reg.lus_ref),
                             name=f"join-update:{self.item.service_id[:8]}")

    # -- internals ------------------------------------------------------------------

    def _on_discovered(self, lus_id: str, ref: RemoteRef) -> None:
        if self._active and lus_id not in self._registrations:
            self.env.process(self._register(lus_id, ref),
                             name=f"join-register:{self.item.service_id[:8]}")

    def _on_discarded(self, lus_id: str) -> None:
        self._registrations.pop(lus_id, None)

    def _register(self, lus_id: str, ref: RemoteRef):
        if not self.host.up or not self._active:
            return
        try:
            registration = yield self._endpoint.call(
                ref, "register", self.item, self.lease_duration, timeout=3.0)
        except RemoteError:
            return  # registrar rejected us; don't discard a live LUS
        except NetworkError:
            self.discovery.discard(lus_id)
            return
        if self._active:
            self._registrations[lus_id] = _Registration(ref, registration.lease)

    def _maintain(self):
        while self._active:
            if self.host.up:
                yield from self._round()
            yield self.env.timeout(self.maintenance_interval)

    def _round(self):
        # Register with any registrar we somehow missed the callback for,
        # in discovery order (insertion-ordered dict).
        for lus_id, ref in list(  # repro: allow[DET003]
                self.discovery.registrars.items()):
            if not self._active:
                return
            if lus_id not in self._registrations:
                yield from self._register(lus_id, ref)
        # Renew leases past the halfway point; re-register if the LUS
        # forgot us (restart or expiry). Registration order (insertion-
        # ordered dict) is the deterministic renewal order.
        for lus_id, reg in list(  # repro: allow[DET003]
                self._registrations.items()):
            if not self._active:
                return
            remaining = reg.lease.remaining(self.env.now)
            if remaining > reg.lease.duration / 2:
                continue
            try:
                new_lease = yield self._endpoint.call(
                    reg.lus_ref, "renew_lease", reg.lease.lease_id,
                    self.lease_duration, timeout=3.0)
                reg.lease = new_lease
            except RemoteError:
                # UnknownLeaseError on the LUS side: it forgot us (restart or
                # expiry) — fall back to a fresh registration.
                self._registrations.pop(lus_id, None)
                yield from self._register(lus_id, reg.lus_ref)
            except NetworkError:
                self._registrations.pop(lus_id, None)
                self.discovery.discard(lus_id)
