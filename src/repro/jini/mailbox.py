"""Event mailbox service — store-and-forward for distributed events.

A client that cannot (or does not want to) stay reachable registers a
mailbox; the mailbox exports a per-registration listener proxy the client
hands to event sources (e.g. the LUS). Events pile up until the client
either pulls them (:meth:`EventMailbox.collect`) or enables push delivery to
a real listener. One of the Jini infrastructure services visible in the
paper's Fig 2 inventory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..sim import Interrupt
from .events import RemoteEvent
from .lease import Landlord, Lease

__all__ = ["EventMailbox", "MailboxRegistration"]


@dataclass
class MailboxRegistration:
    registration_id: str
    listener: RemoteRef     # hand this to event sources
    lease: Lease


class _MailboxSlot:
    """Per-registration listener object exported by the mailbox."""

    REMOTE_TYPES = ("RemoteEventListener",)

    def __init__(self, mailbox: "EventMailbox", registration_id: str):
        self._mailbox = mailbox
        self._registration_id = registration_id

    def notify(self, event: RemoteEvent) -> None:
        self._mailbox._store(self._registration_id, event)


class EventMailbox:
    """The mailbox service proper."""

    REMOTE_TYPES = ("EventMailbox",)
    REMOTE_METHODS = ("register", "collect", "enable_delivery",
                      "disable_delivery", "renew_lease", "cancel_lease")

    def __init__(self, host: Host, max_lease: float = 600.0,
                 sweep_interval: float = 5.0):
        self.host = host
        self.env = host.env
        self._endpoint = rpc_endpoint(host)
        self._events: dict[str, list[RemoteEvent]] = {}
        self._targets: dict[str, RemoteRef] = {}
        self._lease_of: dict[str, int] = {}
        self._landlord = Landlord(host.env, max_duration=max_lease,
                                  on_expire=self._drop)
        self.ref = self._endpoint.export(self, f"mailbox:{host.name}",
                                         methods=self.REMOTE_METHODS)
        host.env.process(self._landlord.sweeper(sweep_interval),
                         name=f"mailbox-sweep:{host.name}")

    # -- remote API -------------------------------------------------------------

    def register(self, lease_duration: float = 600.0) -> MailboxRegistration:
        reg_id = self.host.network.ids.uuid()
        self._events[reg_id] = []
        slot_ref = self._endpoint.export(_MailboxSlot(self, reg_id),
                                         f"mailbox-slot:{reg_id}",
                                         methods=("notify",))
        lease = self._landlord.grant(reg_id, lease_duration)
        self._lease_of[reg_id] = lease.lease_id
        return MailboxRegistration(registration_id=reg_id, listener=slot_ref,
                                   lease=lease)

    def collect(self, registration_id: str, max_events: int = 100) -> list[RemoteEvent]:
        queue = self._events.get(registration_id)
        if queue is None:
            raise KeyError(f"unknown mailbox registration {registration_id!r}")
        taken, self._events[registration_id] = queue[:max_events], queue[max_events:]
        return taken

    def enable_delivery(self, registration_id: str, target: RemoteRef) -> None:
        if registration_id not in self._events:
            raise KeyError(f"unknown mailbox registration {registration_id!r}")
        self._targets[registration_id] = target
        self._flush(registration_id)

    def disable_delivery(self, registration_id: str) -> None:
        self._targets.pop(registration_id, None)

    def renew_lease(self, lease_id: int, duration: float) -> Lease:
        return self._landlord.renew(lease_id, duration)

    def cancel_lease(self, lease_id: int) -> None:
        reg_id = self._landlord.cancel(lease_id)
        self._drop(reg_id)

    # -- internals ------------------------------------------------------------------

    def _store(self, registration_id: str, event: RemoteEvent) -> None:
        queue = self._events.get(registration_id)
        if queue is None:
            return
        queue.append(event)
        if registration_id in self._targets:
            self._flush(registration_id)

    def _flush(self, registration_id: str) -> None:
        self.env.process(self._deliver(registration_id),
                         name=f"mailbox-flush:{registration_id[:8]}")

    def _deliver(self, registration_id: str):
        target = self._targets.get(registration_id)
        queue = self._events.get(registration_id)
        if target is None or not queue:
            return
        pending, self._events[registration_id] = queue[:], []
        for event in pending:
            try:
                yield self._endpoint.call(target, "notify", event,
                                          kind="mailbox-event", timeout=3.0)
            except Interrupt:
                raise
            except Exception:
                # Push failed: requeue and stop pushing until re-enabled.
                self._events[registration_id] = (
                    [event] + self._events[registration_id])
                self._targets.pop(registration_id, None)
                return

    def _drop(self, registration_id: str) -> None:
        self._events.pop(registration_id, None)
        self._targets.pop(registration_id, None)
        self._lease_of.pop(registration_id, None)
        self._endpoint.unexport(f"mailbox-slot:{registration_id}")
