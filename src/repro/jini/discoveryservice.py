"""Lookup Discovery Service — discovery on behalf of clients (Fig 2).

Jini's LDS performs multicast discovery for clients that cannot (e.g. a
device outside the multicast radius, or one that sleeps): clients ask it
for the currently known registrars and may register a listener to be told
when registrars come and go.
"""

from __future__ import annotations

from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..sim import Interrupt
from .discovery import lookup_discovery

__all__ = ["LookupDiscoveryService"]


class LookupDiscoveryService:
    """Remote façade over this host's discovery manager."""

    REMOTE_TYPES = ("LookupDiscoveryService",)
    REMOTE_METHODS = ("registrars", "register_listener", "unregister_listener")

    def __init__(self, host: Host):
        self.host = host
        self.env = host.env
        self._discovery = lookup_discovery(host)
        self._endpoint = rpc_endpoint(host)
        self._listeners: dict[str, RemoteRef] = {}
        self.ref = self._endpoint.export(self, f"lds:{host.name}",
                                         methods=self.REMOTE_METHODS)
        self._discovery.on_discovered(self._notify_all("discovered"))
        self._discovery.on_discarded(self._notify_all("discarded"))

    # -- remote API -------------------------------------------------------------

    def registrars(self) -> dict:
        """lus_id -> registrar proxy, as currently known."""
        return dict(self._discovery.registrars)

    def register_listener(self, listener: RemoteRef) -> str:
        listener_id = self.host.network.ids.uuid()
        self._listeners[listener_id] = listener
        return listener_id

    def unregister_listener(self, listener_id: str) -> None:
        self._listeners.pop(listener_id, None)

    # -- internals ------------------------------------------------------------------

    def _notify_all(self, event_kind: str):
        def callback(lus_id, *rest):
            payload = {"event": event_kind, "lus_id": lus_id}
            if rest:
                payload["registrar"] = rest[0]
            # Listeners notify in registration order (insertion-ordered dict).
            for listener in list(  # repro: allow[DET003]
                    self._listeners.values()):
                self.env.process(self._deliver(listener, payload),
                                 name=f"lds-notify:{event_kind}")
        return callback

    def _deliver(self, listener: RemoteRef, payload: dict):
        if not self.host.up:
            return
        try:
            yield self._endpoint.call(listener, "notify", payload,
                                      kind="lds-event", timeout=3.0)
        except Interrupt:
            raise
        except Exception:
            pass
