"""Service items and lookup templates.

A :class:`ServiceItem` is what a provider registers: its id, its proxy
(:class:`~repro.net.rpc.RemoteRef`) and attribute entries. A
:class:`ServiceTemplate` is what a requestor looks up with: any combination
of exact id, required remote interface names and entry templates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..net.rpc import RemoteRef
from .entries import Name, attributes_match

__all__ = ["ServiceItem", "ServiceTemplate"]


@dataclass
class ServiceItem:
    """A registered service: identity + proxy + attributes."""

    service_id: str
    service: RemoteRef
    attributes: tuple = ()

    def name(self) -> Optional[str]:
        for attr in self.attributes:
            if isinstance(attr, Name):
                return attr.name
        return None

    def with_attributes(self, attributes) -> "ServiceItem":
        return replace(self, attributes=tuple(attributes))


@dataclass(frozen=True)
class ServiceTemplate:
    """Matching rule for lookups.

    * ``service_id`` — exact id, or ``None`` for any;
    * ``types`` — remote interface names the proxy must implement (all);
    * ``attributes`` — entry templates, each must match some item entry.
    """

    service_id: Optional[str] = None
    types: tuple = ()
    attributes: tuple = ()

    def matches(self, item: ServiceItem) -> bool:
        if self.service_id is not None and item.service_id != self.service_id:
            return False
        for type_name in self.types:
            if not item.service.implements(type_name):
                return False
        if self.attributes and not attributes_match(self.attributes, item.attributes):
            return False
        return True

    @staticmethod
    def by_name(name: str, *types: str) -> "ServiceTemplate":
        return ServiceTemplate(types=tuple(types), attributes=(Name(name),))

    @staticmethod
    def by_type(*types: str) -> "ServiceTemplate":
        return ServiceTemplate(types=tuple(types))
