"""Jini-semantics substrate: discovery/join, lookup, leases, events, txns.

A Python re-creation of the Jini network technology the paper builds on
(§IV.B): services register with lookup services under leases, requestors
find them by type + attribute templates, listeners hear about arrivals and
departures, and a two-phase-commit transaction manager supports the
space-based exertion dispatch.
"""

from .discovery import (
    ANNOUNCE_PORT,
    DISCOVERY_GROUP,
    PROBE_PORT,
    LookupDiscovery,
    lookup_discovery,
)
from .entries import (
    Comment,
    Entry,
    Location,
    Name,
    SensorType,
    ServiceInfo,
    attributes_match,
    entry_matches,
)
from .events import (
    ALL_TRANSITIONS,
    EventRegistration,
    HealthEvent,
    RemoteEvent,
    ServiceEvent,
    TRANSITION_MATCH_MATCH,
    TRANSITION_MATCH_NOMATCH,
    TRANSITION_NOMATCH_MATCH,
)
from .discoveryservice import LookupDiscoveryService
from .lease import FOREVER, Landlord, Lease, LeaseDeniedError, UnknownLeaseError
from .leaserenewal import LeaseRenewalService
from .lookup import LookupService, ServiceRegistration
from .join import JoinManager
from .mailbox import EventMailbox, MailboxRegistration
from .template import ServiceItem, ServiceTemplate
from .txn import (
    CannotCommitError,
    CreatedTransaction,
    TransactionManager,
    TxnState,
    UnknownTransactionError,
    Vote,
)

__all__ = [
    "ALL_TRANSITIONS",
    "ANNOUNCE_PORT",
    "CannotCommitError",
    "Comment",
    "CreatedTransaction",
    "DISCOVERY_GROUP",
    "Entry",
    "EventMailbox",
    "EventRegistration",
    "FOREVER",
    "JoinManager",
    "Landlord",
    "Lease",
    "LeaseDeniedError",
    "LeaseRenewalService",
    "Location",
    "LookupDiscovery",
    "LookupDiscoveryService",
    "LookupService",
    "MailboxRegistration",
    "Name",
    "PROBE_PORT",
    "HealthEvent",
    "RemoteEvent",
    "SensorType",
    "ServiceEvent",
    "ServiceInfo",
    "ServiceItem",
    "ServiceRegistration",
    "ServiceTemplate",
    "TRANSITION_MATCH_MATCH",
    "TRANSITION_MATCH_NOMATCH",
    "TRANSITION_NOMATCH_MATCH",
    "TransactionManager",
    "TxnState",
    "UnknownLeaseError",
    "UnknownTransactionError",
    "Vote",
    "attributes_match",
    "entry_matches",
    "lookup_discovery",
]
