"""Sensor clusters — several collaborating motes behind one probe (§V.B).

"ESP can be used to connect multiple sensors, if sensors have the ability
to connect themselves with other sensors, collaborate, and make collected
data available to ESP via its DataCollection interface."

A :class:`SensorCluster` implements the standard probe interface over a set
of member probes: a read fans out to every member (concurrently, like motes
answering a cluster head) and reduces the answers (mean by default). Member
failures are tolerated as long as ``min_members`` answer — the in-network
collaboration robustness the paper alludes to.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..sim import Environment
from .probe import ProbeError, Reading, SensorProbe
from .teds import TransducerTEDS

__all__ = ["SensorCluster"]


class SensorCluster(SensorProbe):
    """Aggregates member probes behind the single-probe interface."""

    def __init__(self, env: Environment, cluster_id: str,
                 members: Sequence[SensorProbe],
                 reducer: Callable[[np.ndarray], float] = None,
                 min_members: int = 1):
        if not members:
            raise ValueError("a cluster needs at least one member probe")
        quantities = {m.teds.quantity for m in members}
        if len(quantities) != 1:
            raise ValueError(
                f"cluster members must measure one quantity, got {quantities}")
        units = {m.teds.unit for m in members}
        if len(units) != 1:
            raise ValueError(f"cluster members disagree on units: {units}")
        if not 1 <= min_members <= len(members):
            raise ValueError(
                f"min_members must be in [1, {len(members)}], got {min_members}")
        self.env = env
        self.cluster_id = cluster_id
        self.members = list(members)
        self.reducer = reducer if reducer is not None else (
            lambda values: float(np.mean(values)))
        self.min_members = min_members
        self.member_failures = 0
        first = members[0].teds
        self._teds = TransducerTEDS(
            manufacturer="cluster", model=f"cluster[{len(members)}]",
            serial_number=cluster_id, version="1.0",
            quantity=first.quantity, unit=first.unit,
            min_range=min(m.teds.min_range for m in members),
            max_range=max(m.teds.max_range for m in members),
            accuracy=max(m.teds.accuracy for m in members),
            resolution=min(m.teds.resolution for m in members))

    # -- SensorProbe interface -----------------------------------------------------

    def connect(self) -> None:
        for member in self.members:
            member.connect()

    def disconnect(self) -> None:
        for member in self.members:
            member.disconnect()

    @property
    def connected(self) -> bool:
        return any(m.connected for m in self.members)

    @property
    def teds(self) -> TransducerTEDS:
        return self._teds

    def read(self):
        """Fan out to every member; reduce the survivors (generator)."""
        if not self.connected:
            raise ProbeError(f"cluster {self.cluster_id}: no member connected")

        def attempt(member):
            try:
                reading = yield self.env.process(member.read())
                return reading
            except ProbeError:
                return None

        procs = [self.env.process(attempt(m), name=f"cluster-read")
                 for m in self.members if m.connected]
        readings = yield self.env.all_of(procs)
        good = [r for r in readings if r is not None]
        self.member_failures += len(procs) - len(good)
        if len(good) < self.min_members:
            raise ProbeError(
                f"cluster {self.cluster_id}: only {len(good)}/{len(procs)} "
                f"members answered (need {self.min_members})")
        value = self.reducer(np.array([r.value for r in good]))
        quality = "good" if len(good) == len(self.members) else "suspect"
        return Reading(value=float(value), unit=self._teds.unit,
                       timestamp=self.env.now, sensor_id=self.cluster_id,
                       quality=quality)
