"""Probe calibration — mapping raw transducer output to engineering units.

Two models: affine :class:`Calibration` (gain/offset, the common case) and
piecewise-linear :class:`CalibrationTable` for non-linear transducers
(e.g. thermistors). The probe applies calibration before quantization; the
paper lists data calibration among the sensor-specific concerns the probe
hides (§V.B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Calibration", "CalibrationTable"]


@dataclass(frozen=True)
class Calibration:
    """Affine calibration: ``actual = gain * raw + offset``."""

    gain: float = 1.0
    offset: float = 0.0

    def __post_init__(self):
        if self.gain == 0:
            raise ValueError("gain must be non-zero")

    def apply(self, raw: float) -> float:
        return self.gain * raw + self.offset

    def invert(self, actual: float) -> float:
        return (actual - self.offset) / self.gain


class CalibrationTable:
    """Piecewise-linear calibration through measured (raw, actual) points."""

    def __init__(self, points: Sequence):
        if len(points) < 2:
            raise ValueError("calibration table needs at least two points")
        raws = [p[0] for p in points]
        if sorted(raws) != raws or len(set(raws)) != len(raws):
            raise ValueError("raw values must be strictly increasing")
        self._raw = np.array(raws, dtype=float)
        self._actual = np.array([p[1] for p in points], dtype=float)

    def apply(self, raw: float) -> float:
        """Interpolate; extrapolates linearly beyond the table ends."""
        if raw <= self._raw[0]:
            slope = ((self._actual[1] - self._actual[0])
                     / (self._raw[1] - self._raw[0]))
            return float(self._actual[0] + slope * (raw - self._raw[0]))
        if raw >= self._raw[-1]:
            slope = ((self._actual[-1] - self._actual[-2])
                     / (self._raw[-1] - self._raw[-2]))
            return float(self._actual[-1] + slope * (raw - self._raw[-1]))
        return float(np.interp(raw, self._raw, self._actual))
