"""Probe fault injection — the failure modes field sensors actually exhibit.

Used by failure-injection tests and the fault-tolerance benchmarks: a probe
can get *stuck* (repeats its last value), *drop out* (read errors), turn
*noisy* (variance spike) or *drift* (slow additive bias). Faults can be
scheduled deterministically or arise stochastically from per-read hazard
rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from ..util.rng import substream

__all__ = ["FaultMode", "FaultSchedule", "FaultInjector", "ProbeFault"]


class FaultMode(Enum):
    OK = "ok"
    STUCK = "stuck"
    DROPOUT = "dropout"
    NOISY = "noisy"
    DRIFT = "drift"


class ProbeFault(Exception):
    """Raised by a probe read while a DROPOUT fault is active."""


@dataclass
class FaultSchedule:
    """A deterministic fault window."""

    mode: FaultMode
    start: float
    end: float

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


class FaultInjector:
    """Transforms raw sensor values according to active faults.

    Deterministic windows take precedence; otherwise per-read hazard rates
    (probability per read) can trigger transient faults for ``hold`` sim
    seconds.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 dropout_rate: float = 0.0,
                 stuck_rate: float = 0.0,
                 noise_rate: float = 0.0,
                 hold: float = 30.0,
                 noisy_sigma: float = 5.0,
                 drift_per_second: float = 0.0,
                 seed: Optional[int] = None,
                 name: str = "probe"):
        # Preferred seeding: a named substream under the scenario seed, so
        # probe-fault hazards are independent of every other stream (chaos
        # plans, latency, ...) — adding a new consumer elsewhere cannot
        # shift fault timing. An explicit ``rng`` still wins (legacy tests).
        if rng is None:
            rng = (substream(seed, "sensors.faults", name)
                   if seed is not None else np.random.default_rng(0))
        self.rng = rng
        self.dropout_rate = dropout_rate
        self.stuck_rate = stuck_rate
        self.noise_rate = noise_rate
        self.hold = hold
        self.noisy_sigma = noisy_sigma
        self.drift_per_second = drift_per_second
        self.schedules: list[FaultSchedule] = []
        self._transient: Optional[FaultSchedule] = None
        self._last_value: Optional[float] = None
        self._drift_started: Optional[float] = None
        #: Timestamp of the last hazard draw and its outcome. A second query
        #: at the same sim time must see the same decision, not a fresh roll.
        self._hazard_t: Optional[float] = None
        self._hazard_mode: FaultMode = FaultMode.OK

    def schedule(self, mode: FaultMode, start: float, end: float) -> None:
        if start >= end:
            raise ValueError("fault window must have start < end")
        self.schedules.append(FaultSchedule(mode, start, end))

    def mode_at(self, t: float) -> FaultMode:
        """The fault mode active at ``t``. Idempotent per timestamp: the
        hazard RNG is consulted at most once for each distinct ``t``, so an
        external ``mode_at`` check followed by :meth:`transform` at the same
        sim time sees one consistent fault decision."""
        for window in self.schedules:
            if window.active(t):
                return window.mode
        if self._transient is not None and self._transient.active(t):
            return self._transient.mode
        if self._hazard_t == t:
            return self._hazard_mode
        self._transient = None
        # Hazard draws (at most one transient at a time, one roll per t).
        roll = self.rng.random()
        if roll < self.dropout_rate:
            self._transient = FaultSchedule(FaultMode.DROPOUT, t, t + self.hold)
        elif roll < self.dropout_rate + self.stuck_rate:
            self._transient = FaultSchedule(FaultMode.STUCK, t, t + self.hold)
        elif roll < self.dropout_rate + self.stuck_rate + self.noise_rate:
            self._transient = FaultSchedule(FaultMode.NOISY, t, t + self.hold)
        self._hazard_t = t
        self._hazard_mode = (self._transient.mode if self._transient
                             else FaultMode.OK)
        return self._hazard_mode

    def transform(self, value: float, t: float) -> float:
        """Apply the active fault to a raw value (may raise ProbeFault)."""
        mode = self.mode_at(t)
        if mode is FaultMode.DROPOUT:
            raise ProbeFault(f"sensor dropout at t={t:.1f}")
        if mode is FaultMode.STUCK and self._last_value is not None:
            return self._last_value
        if mode is FaultMode.NOISY:
            value = value + float(self.rng.normal(0.0, self.noisy_sigma))
        if mode is FaultMode.DRIFT or self.drift_per_second:
            if self._drift_started is None:
                self._drift_started = t
            value = value + self.drift_per_second * (t - self._drift_started)
        self._last_value = value
        return value
