"""Synthetic physical environment — the ground truth sensors measure.

Substitutes for the physical world around the paper's Sun SPOT temperature
sensors. Each quantity ("temperature", "humidity", ...) is a field over 2-D
space and time:

    value(q, x, t) = base + gradient . x + amplitude * sin(2 pi (t+phase)/period)
                     + sigma * smooth_noise(q, x, t) + sum(active events)

``smooth_noise`` is deterministic: a hash of (seed, quantity, location,
floor(t/tau)) seeds a unit normal per knot, linearly interpolated between
knots — so any (location, time) resample reproduces the same value, which
lets tests compare sensor aggregates against exact ground truth.

Events (a heater switching on, a cold front) add localized step changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["FieldSpec", "FieldEvent", "PhysicalEnvironment"]


@dataclass(frozen=True)
class FieldSpec:
    """Parameters of one scalar field."""

    base: float
    unit: str
    gradient: tuple = (0.0, 0.0)     # per-metre spatial slope
    amplitude: float = 0.0           # diurnal swing (half peak-to-peak)
    period: float = 86400.0          # seconds per cycle
    phase: float = 0.0               # seconds offset into the cycle
    noise_sigma: float = 0.0
    noise_tau: float = 60.0          # noise correlation time (s)


@dataclass
class FieldEvent:
    """A localized additive disturbance active during [start, end)."""

    quantity: str
    center: tuple
    radius: float
    delta: float
    start: float
    end: float

    def contribution(self, quantity: str, location: tuple, t: float) -> float:
        if quantity != self.quantity or not (self.start <= t < self.end):
            return 0.0
        dx = location[0] - self.center[0]
        dy = location[1] - self.center[1]
        distance = math.hypot(dx, dy)
        if distance >= self.radius:
            return 0.0
        return self.delta * (1.0 - distance / self.radius)


class PhysicalEnvironment:
    """Deterministic multi-quantity field sampler."""

    #: Sensible defaults covering every probe driver we ship.
    DEFAULT_FIELDS = {
        "temperature": FieldSpec(base=22.0, unit="celsius",
                                 gradient=(0.02, -0.01), amplitude=6.0,
                                 period=86400.0, phase=-21600.0,
                                 noise_sigma=0.3, noise_tau=120.0),
        "humidity": FieldSpec(base=55.0, unit="percent",
                              gradient=(-0.05, 0.02), amplitude=15.0,
                              period=86400.0, phase=21600.0,
                              noise_sigma=1.5, noise_tau=300.0),
        "light": FieldSpec(base=500.0, unit="lux", amplitude=480.0,
                           period=86400.0, phase=-21600.0,
                           noise_sigma=20.0, noise_tau=30.0),
        "pressure": FieldSpec(base=1013.0, unit="hpa", amplitude=3.0,
                              period=43200.0, noise_sigma=0.5,
                              noise_tau=600.0),
    }

    def __init__(self, seed: int = 0, fields: Optional[dict] = None):
        self.seed = seed
        self.fields: dict[str, FieldSpec] = dict(self.DEFAULT_FIELDS)
        if fields:
            self.fields.update(fields)
        self.events: list[FieldEvent] = []

    # -- configuration -----------------------------------------------------------

    def define_field(self, quantity: str, spec: FieldSpec) -> None:
        self.fields[quantity] = spec

    def add_event(self, event: FieldEvent) -> None:
        if event.quantity not in self.fields:
            raise KeyError(f"unknown quantity {event.quantity!r}")
        self.events.append(event)

    def unit_of(self, quantity: str) -> str:
        return self.fields[quantity].unit

    # -- sampling ------------------------------------------------------------------

    def sample(self, quantity: str, location: tuple, t: float) -> float:
        spec = self.fields.get(quantity)
        if spec is None:
            raise KeyError(f"unknown quantity {quantity!r}")
        value = spec.base
        value += spec.gradient[0] * location[0] + spec.gradient[1] * location[1]
        if spec.amplitude:
            value += spec.amplitude * math.sin(
                2.0 * math.pi * (t + spec.phase) / spec.period)
        if spec.noise_sigma:
            value += spec.noise_sigma * self._smooth_noise(quantity, location, t,
                                                           spec.noise_tau)
        for event in self.events:
            value += event.contribution(quantity, location, t)
        return value

    def mean_over(self, quantity: str, locations: list, t: float) -> float:
        """Ground-truth average across several locations (test oracle)."""
        return float(np.mean([self.sample(quantity, loc, t) for loc in locations]))

    # -- internals ------------------------------------------------------------------

    def _knot(self, quantity: str, location: tuple, index: int) -> float:
        key = hash((self.seed, quantity,
                    round(location[0], 6), round(location[1], 6), index))
        rng = np.random.default_rng(key & 0xFFFFFFFF)
        return float(rng.standard_normal())

    def _smooth_noise(self, quantity: str, location: tuple, t: float,
                      tau: float) -> float:
        position = t / tau
        k = math.floor(position)
        frac = position - k
        a = self._knot(quantity, location, k)
        b = self._knot(quantity, location, k + 1)
        return a * (1.0 - frac) + b * frac
