"""Synthetic physical environment — the ground truth sensors measure.

Substitutes for the physical world around the paper's Sun SPOT temperature
sensors. Each quantity ("temperature", "humidity", ...) is a field over 2-D
space and time:

    value(q, x, t) = base + gradient . x + amplitude * sin(2 pi (t+phase)/period)
                     + sigma * smooth_noise(q, x, t) + sum(active events)

``smooth_noise`` is deterministic: a hash of (seed, quantity, location,
floor(t/tau)) seeds a unit normal per knot, linearly interpolated between
knots — so any (location, time) resample reproduces the same value, which
lets tests compare sensor aggregates against exact ground truth.

Events (a heater switching on, a cold front) add localized step changes.

:meth:`PhysicalEnvironment.sample_many` reads a whole probe fleet in one
call. With numpy present the spatial terms are array operations over cached
per-fleet coordinate arrays and the noise knots are cached per correlation
window, so a 100k-probe tick costs a handful of array ops; without numpy it
falls back to the scalar loop. Both paths produce bitwise-identical floats
to per-probe :meth:`~PhysicalEnvironment.sample` calls — every elementwise
operation mirrors the scalar expression tree exactly (IEEE-754 doubles round
identically either way), and the transcendental terms (``sin``,
``hypot``) are always computed scalar-side.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

__all__ = ["FieldSpec", "FieldEvent", "PhysicalEnvironment"]


def _box_muller(seed: int) -> float:  # pragma: no cover - numpy-less installs
    """Stdlib stand-in for the seeded unit normal when numpy is missing.

    Only self-consistency matters on such installs; matching numpy's
    bit stream is not required (nor possible).
    """
    return _random.Random(seed).gauss(0.0, 1.0)  # repro: allow[DET005]


@dataclass(frozen=True)
class FieldSpec:
    """Parameters of one scalar field."""

    base: float
    unit: str
    gradient: tuple = (0.0, 0.0)     # per-metre spatial slope
    amplitude: float = 0.0           # diurnal swing (half peak-to-peak)
    period: float = 86400.0          # seconds per cycle
    phase: float = 0.0               # seconds offset into the cycle
    noise_sigma: float = 0.0
    noise_tau: float = 60.0          # noise correlation time (s)


@dataclass
class FieldEvent:
    """A localized additive disturbance active during [start, end)."""

    quantity: str
    center: tuple
    radius: float
    delta: float
    start: float
    end: float

    def contribution(self, quantity: str, location: tuple, t: float) -> float:
        if quantity != self.quantity or not (self.start <= t < self.end):
            return 0.0
        dx = location[0] - self.center[0]
        dy = location[1] - self.center[1]
        distance = math.hypot(dx, dy)
        if distance >= self.radius:
            return 0.0
        return self.delta * (1.0 - distance / self.radius)


class PhysicalEnvironment:
    """Deterministic multi-quantity field sampler."""

    #: Sensible defaults covering every probe driver we ship.
    DEFAULT_FIELDS = {
        "temperature": FieldSpec(base=22.0, unit="celsius",
                                 gradient=(0.02, -0.01), amplitude=6.0,
                                 period=86400.0, phase=-21600.0,
                                 noise_sigma=0.3, noise_tau=120.0),
        "humidity": FieldSpec(base=55.0, unit="percent",
                              gradient=(-0.05, 0.02), amplitude=15.0,
                              period=86400.0, phase=21600.0,
                              noise_sigma=1.5, noise_tau=300.0),
        "light": FieldSpec(base=500.0, unit="lux", amplitude=480.0,
                           period=86400.0, phase=-21600.0,
                           noise_sigma=20.0, noise_tau=30.0),
        "pressure": FieldSpec(base=1013.0, unit="hpa", amplitude=3.0,
                              period=43200.0, noise_sigma=0.5,
                              noise_tau=600.0),
    }

    def __init__(self, seed: int = 0, fields: Optional[dict] = None,
                 vectorize: Optional[bool] = None):
        self.seed = seed
        self.fields: dict[str, FieldSpec] = dict(self.DEFAULT_FIELDS)
        if fields:
            self.fields.update(fields)
        self.events: list[FieldEvent] = []
        #: Use numpy array ops in :meth:`sample_many`; ``None`` means "if
        #: numpy is importable". Forcing ``False`` exercises the pure-python
        #: fallback (the bitwise-equivalence tests do).
        self.vectorize = (np is not None) if vectorize is None else vectorize
        # Noise knots keyed quantity -> knot index -> (x, y) -> value.
        # Knot RNG construction dominates scalar sampling cost; knots only
        # change every `noise_tau` seconds, so caching amortizes them across
        # all the ticks inside one correlation window.
        self._knots: dict[str, dict[int, dict[tuple, float]]] = {}
        # Per-fleet coordinate arrays, keyed by id() of the locations list
        # (a strong reference to the list is kept so the id stays valid).
        self._blocks: dict[int, tuple] = {}
        # Per-(quantity, knot index, fleet) knot value arrays.
        self._knot_arrays: dict[tuple, object] = {}

    # -- configuration -----------------------------------------------------------

    def define_field(self, quantity: str, spec: FieldSpec) -> None:
        self.fields[quantity] = spec

    def add_event(self, event: FieldEvent) -> None:
        if event.quantity not in self.fields:
            raise KeyError(f"unknown quantity {event.quantity!r}")
        self.events.append(event)

    def unit_of(self, quantity: str) -> str:
        return self.fields[quantity].unit

    # -- sampling ------------------------------------------------------------------

    def sample(self, quantity: str, location: tuple, t: float) -> float:
        spec = self.fields.get(quantity)
        if spec is None:
            raise KeyError(f"unknown quantity {quantity!r}")
        value = spec.base
        value += spec.gradient[0] * location[0] + spec.gradient[1] * location[1]
        if spec.amplitude:
            value += spec.amplitude * math.sin(
                2.0 * math.pi * (t + spec.phase) / spec.period)
        if spec.noise_sigma:
            value += spec.noise_sigma * self._smooth_noise(quantity, location, t,
                                                           spec.noise_tau)
        for event in self.events:
            value += event.contribution(quantity, location, t)
        return value

    def sample_many(self, quantity: str, locations: list, t: float) -> list:
        """Sample one quantity at every location; returns a list of floats.

        Bitwise-identical to ``[self.sample(quantity, loc, t) for loc in
        locations]`` — the array path replicates the scalar expression tree
        term by term, and active :class:`FieldEvent` contributions always go
        through the scalar code (``math.hypot`` has no bitwise-equal numpy
        spelling).
        """
        spec = self.fields.get(quantity)
        if spec is None:
            raise KeyError(f"unknown quantity {quantity!r}")
        if not self.vectorize or np is None:
            return [self.sample(quantity, loc, t) for loc in locations]
        xs, ys = self._block(locations)
        values = spec.base + (spec.gradient[0] * xs + spec.gradient[1] * ys)
        if spec.amplitude:
            values = values + spec.amplitude * math.sin(
                2.0 * math.pi * (t + spec.phase) / spec.period)
        if spec.noise_sigma:
            position = t / spec.noise_tau
            k = math.floor(position)
            frac = position - k
            a = self._knot_array(quantity, locations, k)
            b = self._knot_array(quantity, locations, k + 1)
            values = values + spec.noise_sigma * (a * (1.0 - frac) + b * frac)
        out = values.tolist()
        if self.events:
            # Scalar on purpose: sample() adds every event's contribution
            # (zero or not) in list order, and math.hypot inside
            # contribution() has no bitwise-equal numpy spelling.
            for i, loc in enumerate(locations):
                value = out[i]
                for ev in self.events:
                    value += ev.contribution(quantity, loc, t)
                out[i] = value
        return out

    def mean_over(self, quantity: str, locations: list, t: float) -> float:
        """Ground-truth average across several locations (test oracle)."""
        samples = self.sample_many(quantity, locations, t)
        if np is None:  # pragma: no cover - the CI image always has numpy
            return sum(samples) / len(samples)
        return float(np.mean(samples))

    # -- internals ------------------------------------------------------------------

    def _knot(self, quantity: str, location: tuple, index: int) -> float:
        per_quantity = self._knots.setdefault(quantity, {})
        generation = per_quantity.get(index)
        if generation is None:
            # Keep only a sliding window of knot generations: sampling at
            # time t touches knots floor(t/tau) and floor(t/tau)+1, so
            # anything older than index-1 cannot be needed again on the
            # forward-moving clock (recomputing after a rare backward
            # oracle query is deterministic anyway).
            for old in [i for i in per_quantity if i < index - 1]:
                del per_quantity[old]
            generation = per_quantity[index] = {}
        cached = generation.get(location)
        if cached is None:
            key = hash((self.seed, quantity,
                        round(location[0], 6), round(location[1], 6), index))
            if np is not None:
                cached = float(
                    np.random.default_rng(key & 0xFFFFFFFF).standard_normal())
            else:  # pragma: no cover - the CI image always has numpy
                cached = _box_muller(key & 0xFFFFFFFF)
            generation[location] = cached
        return cached

    def _smooth_noise(self, quantity: str, location: tuple, t: float,
                      tau: float) -> float:
        position = t / tau
        k = math.floor(position)
        frac = position - k
        a = self._knot(quantity, location, k)
        b = self._knot(quantity, location, k + 1)
        return a * (1.0 - frac) + b * frac

    def _block(self, locations: list) -> tuple:
        """Cached (xs, ys) coordinate arrays for a fleet's location list."""
        entry = self._blocks.get(id(locations))
        if entry is not None and entry[0] is locations:
            return entry[1], entry[2]
        xs = np.array([loc[0] for loc in locations], dtype=np.float64)
        ys = np.array([loc[1] for loc in locations], dtype=np.float64)
        if len(self._blocks) > 64:
            self._blocks.clear()
            self._knot_arrays.clear()
        self._blocks[id(locations)] = (locations, xs, ys)
        return xs, ys

    def _knot_array(self, quantity: str, locations: list, index: int):
        """Knot values for a whole fleet at one knot index, cached per
        correlation window so each tick inside the window reuses it."""
        key = (quantity, index, id(locations))
        arr = self._knot_arrays.get(key)
        if arr is None:
            for old in [k for k in self._knot_arrays
                        if k[0] == quantity and k[2] == id(locations)
                        and k[1] < index - 1]:
                del self._knot_arrays[old]
            arr = np.array([self._knot(quantity, loc, index)
                            for loc in locations], dtype=np.float64)
            self._knot_arrays[key] = arr
        return arr
