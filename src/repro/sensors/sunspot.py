"""Simulated Sun SPOT — the device the paper's experiment used (§VI).

A Sun SPOT (Small Programmable Object Technology) is a battery-powered
Java-programmable mote with onboard sensors and an IEEE 802.15.4 radio. We
model the parts that matter to the framework: a battery that drains per
read and over time (an exhausted device stops answering, which exercises
the lease/failover path), a radio duty-cycle flag, and the onboard
temperature sensor exposed through the standard probe interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Environment
from .calibration import Calibration
from .environment import PhysicalEnvironment
from .faults import FaultInjector
from .probe import BaseProbe, ProbeError
from .teds import TransducerTEDS

__all__ = ["SunSpotDevice", "SunSpotTemperatureProbe", "BatteryExhausted"]


class BatteryExhausted(ProbeError):
    """The device battery is flat; reads fail until recharged."""


class SunSpotDevice:
    """Shared device state for probes riding the same SPOT."""

    def __init__(self, env: Environment, device_id: str,
                 battery_mah: float = 720.0,
                 idle_drain_ma: float = 0.2,
                 read_cost_mah: float = 0.005,
                 radio_cost_mah: float = 0.002):
        self.env = env
        self.device_id = device_id
        self.capacity_mah = battery_mah
        self.charge_mah = battery_mah
        self.idle_drain_ma = idle_drain_ma
        self.read_cost_mah = read_cost_mah
        self.radio_cost_mah = radio_cost_mah
        self.radio_on = True
        self._last_idle_update = env.now
        self.total_reads = 0

    # -- battery ----------------------------------------------------------------

    def _apply_idle_drain(self) -> None:
        elapsed_hours = (self.env.now - self._last_idle_update) / 3600.0
        self.charge_mah = max(0.0, self.charge_mah
                              - self.idle_drain_ma * elapsed_hours)
        self._last_idle_update = self.env.now

    @property
    def battery_fraction(self) -> float:
        self._apply_idle_drain()
        return self.charge_mah / self.capacity_mah if self.capacity_mah else 0.0

    @property
    def exhausted(self) -> bool:
        return self.battery_fraction <= 0.0

    def recharge(self) -> None:
        self.charge_mah = self.capacity_mah
        self._last_idle_update = self.env.now

    def consume_read(self) -> None:
        self._apply_idle_drain()
        if self.charge_mah <= 0.0:
            raise BatteryExhausted(f"SPOT {self.device_id}: battery flat")
        cost = self.read_cost_mah + (self.radio_cost_mah if self.radio_on else 0.0)
        self.charge_mah = max(0.0, self.charge_mah - cost)
        self.total_reads += 1


class SunSpotTemperatureProbe(BaseProbe):
    """The SPOT's onboard ADT7411 temperature sensor."""

    QUANTITY = "temperature"

    def __init__(self, env: Environment, device: SunSpotDevice,
                 environment: PhysicalEnvironment, location: tuple,
                 rng: Optional[np.random.Generator] = None,
                 calibration: Optional[Calibration] = None,
                 fault_injector: Optional[FaultInjector] = None):
        teds = TransducerTEDS(
            manufacturer="Sun Microsystems", model="SunSPOT/ADT7411",
            serial_number=device.device_id, version="purple-5.0",
            quantity="temperature", unit="celsius",
            min_range=-40.0, max_range=125.0, accuracy=0.5, resolution=0.25)
        super().__init__(env, f"spot-{device.device_id}", teds,
                         calibration=calibration, fault_injector=fault_injector,
                         read_latency=0.02)
        self.device = device
        self.environment = environment
        self.location = tuple(location)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _sense(self, t: float) -> float:
        self.device.consume_read()
        truth = self.environment.sample("temperature", self.location, t)
        # Board self-heating plus ADC noise.
        return truth + 0.2 + float(self.rng.normal(0.0, 0.15))
