"""Sensor probes — the only sensor-dependent component of the framework.

§V.B: "A Sensor Probe ... contains sensor specific driver code ... but hides
these details from sensor service providers." :class:`BaseProbe` owns the
common pipeline — connect state, read latency, fault injection, calibration,
range clamping, quantization — and concrete drivers supply ``_sense()``
(how to get a raw number from *their* technology).
"""

from __future__ import annotations

import inspect

from dataclasses import dataclass
from typing import Optional

from ..net.wire import WireSized
from ..sim import Environment
from ..snapshot.registry import register_participant
from .calibration import Calibration
from .faults import FaultInjector, ProbeFault
from .teds import TransducerTEDS

__all__ = ["Reading", "ProbeError", "ProbeNotConnected", "SensorProbe",
           "BaseProbe"]


class ProbeError(Exception):
    """A read failed at the probe level."""


class ProbeNotConnected(ProbeError):
    """Operations on a disconnected probe."""


@dataclass(frozen=True)
class Reading(WireSized):
    """One calibrated measurement."""

    value: float
    unit: str
    timestamp: float
    sensor_id: str
    quality: str = "good"     # "good" | "clamped" | "suspect"

    def wire_size(self) -> int:
        # value + timestamp + short strings: what a compact encoding needs.
        return 8 + 8 + 2 + len(self.unit) + len(self.sensor_id) + 1


class SensorProbe:
    """Abstract probe interface consumed by elementary sensor providers."""

    def connect(self):  # pragma: no cover - interface
        raise NotImplementedError

    def disconnect(self):  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def connected(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def teds(self) -> TransducerTEDS:  # pragma: no cover - interface
        raise NotImplementedError

    def read(self):  # pragma: no cover - interface
        """A generator yielding sim events, returning a :class:`Reading`."""
        raise NotImplementedError


class BaseProbe(SensorProbe):
    """Shared probe machinery; drivers implement :meth:`_sense`."""

    def __init__(self, env: Environment, sensor_id: str, teds: TransducerTEDS,
                 calibration: Optional[Calibration] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 read_latency: float = 0.01):
        self.env = env
        self.sensor_id = sensor_id
        self._teds = teds
        self.calibration = calibration if calibration is not None else Calibration()
        self.faults = fault_injector
        self.read_latency = read_latency
        self._connected = False
        self.reads = 0
        self.read_errors = 0
        register_participant(env, f"sensor.probe.{sensor_id}",
                             self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: connection flag and read counters."""
        return {"connected": self._connected,
                "read_errors": self.read_errors,
                "reads": self.reads}

    # -- SensorProbe interface -----------------------------------------------------

    def connect(self) -> None:
        self._connected = True

    def disconnect(self) -> None:
        self._connected = False

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def teds(self) -> TransducerTEDS:
        return self._teds

    def read(self):
        """Take one measurement (generator; models transducer latency)."""
        if not self._connected:
            raise ProbeNotConnected(f"probe {self.sensor_id} is not connected")
        if self.read_latency > 0:
            yield self.env.timeout(self.read_latency)
        t = self.env.now
        try:
            raw = self._sense(t)
            if inspect.isgenerator(raw):
                # Drivers that talk to their transducer over a bus or
                # network sense asynchronously (sim processes).
                raw = yield self.env.process(raw)
            if self.faults is not None:
                raw = self.faults.transform(raw, self.env.now)
        except ProbeFault as exc:
            self.read_errors += 1
            raise ProbeError(str(exc)) from exc
        value = self.calibration.apply(raw)
        quality = "good"
        if not self._teds.in_range(value):
            value = self._teds.clamp(value)
            quality = "clamped"
        value = self._teds.quantize(value)
        self.reads += 1
        return Reading(value=value, unit=self._teds.unit, timestamp=t,
                       sensor_id=self.sensor_id, quality=quality)

    # -- driver hook ----------------------------------------------------------------

    def _sense(self, t: float) -> float:  # pragma: no cover - abstract
        """Return the raw (pre-calibration) transducer output at time t."""
        raise NotImplementedError
