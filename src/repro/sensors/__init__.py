"""Sensor substrate: synthetic environment, TEDS, calibration, faults,
probe drivers (incl. the simulated Sun SPOT) and the local reading store."""

from .buffer import ReadingBuffer
from .calibration import Calibration, CalibrationTable
from .cluster import SensorCluster
from .drivers import (
    EnvironmentProbe,
    HumidityProbe,
    LightProbe,
    PressureProbe,
    TemperatureProbe,
)
from .environment import FieldEvent, FieldSpec, PhysicalEnvironment
from .faults import FaultInjector, FaultMode, FaultSchedule, ProbeFault
from .legacy import LegacyFieldStation, LegacyProtocolProbe
from .probe import BaseProbe, ProbeError, ProbeNotConnected, Reading, SensorProbe
from .sunspot import BatteryExhausted, SunSpotDevice, SunSpotTemperatureProbe
from .teds import TransducerTEDS

__all__ = [
    "BaseProbe",
    "BatteryExhausted",
    "Calibration",
    "CalibrationTable",
    "EnvironmentProbe",
    "FaultInjector",
    "FaultMode",
    "FaultSchedule",
    "FieldEvent",
    "FieldSpec",
    "HumidityProbe",
    "LegacyFieldStation",
    "LegacyProtocolProbe",
    "LightProbe",
    "PhysicalEnvironment",
    "PressureProbe",
    "ProbeError",
    "ProbeFault",
    "ProbeNotConnected",
    "Reading",
    "ReadingBuffer",
    "SensorCluster",
    "SensorProbe",
    "SunSpotDevice",
    "SunSpotTemperatureProbe",
    "TemperatureProbe",
    "TransducerTEDS",
]
