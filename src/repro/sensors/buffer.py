"""Local reading store — a ring buffer with window statistics.

§III.B argues a sensor service "should be capable of storing data to the
local store" because sensors produce faster than consumers poll. Each
elementary sensor provider keeps its samples here and can answer history
and statistics queries without touching the probe.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from .probe import Reading

__all__ = ["ReadingBuffer"]


class ReadingBuffer:
    """Fixed-capacity FIFO of :class:`Reading` with summary statistics."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._readings: deque[Reading] = deque(maxlen=capacity)
        self.total_appended = 0

    def append(self, reading: Reading) -> None:
        self._readings.append(reading)
        self.total_appended += 1

    def __len__(self) -> int:
        return len(self._readings)

    @property
    def dropped(self) -> int:
        """Readings evicted because the ring was full."""
        return self.total_appended - len(self._readings)

    def last(self) -> Optional[Reading]:
        return self._readings[-1] if self._readings else None

    def window(self, n: int) -> list[Reading]:
        """The most recent ``n`` readings, oldest first."""
        if n <= 0:
            return []
        items = list(self._readings)
        return items[-n:]

    def since(self, t: float) -> list[Reading]:
        return [r for r in self._readings if r.timestamp >= t]

    def values(self, n: Optional[int] = None) -> np.ndarray:
        source = self.window(n) if n is not None else list(self._readings)
        return np.array([r.value for r in source], dtype=float)

    def stats(self, n: Optional[int] = None) -> dict:
        """mean/min/max/std/count over the last ``n`` (or all) readings."""
        values = self.values(n)
        if values.size == 0:
            return {"count": 0, "mean": None, "min": None, "max": None,
                    "std": None}
        return {
            "count": int(values.size),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "std": float(values.std()),
        }
