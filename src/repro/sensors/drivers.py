"""Concrete probe drivers — one per 'sensor technology'.

Each driver reads the synthetic :class:`~repro.sensors.environment.
PhysicalEnvironment` at its deployment location with technology-specific
TEDS (range/accuracy/resolution) and per-unit sensing noise. The point of
having several is the paper's §II.3 claim: SenSORCER must absorb
heterogeneous, non-standardized technologies behind one probe interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Environment
from .calibration import Calibration
from .environment import PhysicalEnvironment
from .faults import FaultInjector
from .probe import BaseProbe
from .teds import TransducerTEDS

__all__ = ["EnvironmentProbe", "TemperatureProbe", "HumidityProbe",
           "LightProbe", "PressureProbe"]


class EnvironmentProbe(BaseProbe):
    """A probe sampling one quantity of the physical environment."""

    QUANTITY = "generic"

    def __init__(self, env: Environment, sensor_id: str,
                 environment: PhysicalEnvironment, location: tuple,
                 teds: TransducerTEDS,
                 rng: Optional[np.random.Generator] = None,
                 sensing_noise: float = 0.0,
                 calibration: Optional[Calibration] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 read_latency: float = 0.01):
        super().__init__(env, sensor_id, teds, calibration=calibration,
                         fault_injector=fault_injector,
                         read_latency=read_latency)
        self.environment = environment
        self.location = tuple(location)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.sensing_noise = sensing_noise

    def _sense(self, t: float) -> float:
        truth = self.environment.sample(self.teds.quantity, self.location, t)
        if self.sensing_noise:
            truth += float(self.rng.normal(0.0, self.sensing_noise))
        return truth


def _teds(model: str, serial: str, quantity: str, unit: str,
          lo: float, hi: float, accuracy: float, resolution: float,
          manufacturer: str = "SimuSense") -> TransducerTEDS:
    return TransducerTEDS(
        manufacturer=manufacturer, model=model, serial_number=serial,
        version="1.0", quantity=quantity, unit=unit, min_range=lo,
        max_range=hi, accuracy=accuracy, resolution=resolution)


class TemperatureProbe(EnvironmentProbe):
    """A generic digital thermometer (-40..85 C, 0.0625 C steps)."""

    QUANTITY = "temperature"

    def __init__(self, env, sensor_id, environment, location, **kwargs):
        teds = kwargs.pop("teds", None) or _teds(
            "TMP275", sensor_id, "temperature", "celsius",
            -40.0, 85.0, accuracy=0.5, resolution=0.0625)
        kwargs.setdefault("sensing_noise", 0.1)
        super().__init__(env, sensor_id, environment, location, teds, **kwargs)


class HumidityProbe(EnvironmentProbe):
    QUANTITY = "humidity"

    def __init__(self, env, sensor_id, environment, location, **kwargs):
        teds = kwargs.pop("teds", None) or _teds(
            "SHT11", sensor_id, "humidity", "percent",
            0.0, 100.0, accuracy=3.0, resolution=0.05)
        kwargs.setdefault("sensing_noise", 0.5)
        super().__init__(env, sensor_id, environment, location, teds, **kwargs)


class LightProbe(EnvironmentProbe):
    QUANTITY = "light"

    def __init__(self, env, sensor_id, environment, location, **kwargs):
        teds = kwargs.pop("teds", None) or _teds(
            "TSL2561", sensor_id, "light", "lux",
            0.0, 40000.0, accuracy=20.0, resolution=1.0)
        kwargs.setdefault("sensing_noise", 5.0)
        super().__init__(env, sensor_id, environment, location, teds, **kwargs)


class PressureProbe(EnvironmentProbe):
    QUANTITY = "pressure"

    def __init__(self, env, sensor_id, environment, location, **kwargs):
        teds = kwargs.pop("teds", None) or _teds(
            "BMP085", sensor_id, "pressure", "hpa",
            300.0, 1100.0, accuracy=1.0, resolution=0.01)
        kwargs.setdefault("sensing_noise", 0.2)
        super().__init__(env, sensor_id, environment, location, teds, **kwargs)
