"""Transducer Electronic Data Sheets — IEEE-1451-style sensor metadata.

The paper (§II.3) notes IEEE 1451 exists but is poorly adopted, so
SenSORCER must wrap both standard and non-standard sensors. We model the
useful core of a TEDS: identity, measured quantity, range, accuracy. Probes
expose their TEDS so upper layers can reason about sensors generically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransducerTEDS"]


@dataclass(frozen=True)
class TransducerTEDS:
    """The subset of an IEEE-1451 TEDS that SenSORCER consumes."""

    manufacturer: str
    model: str
    serial_number: str
    version: str
    quantity: str            # "temperature", "humidity", ...
    unit: str                # "celsius", "percent", ...
    min_range: float
    max_range: float
    accuracy: float          # +/- in measurement units
    resolution: float        # smallest distinguishable step

    def __post_init__(self):
        if self.min_range >= self.max_range:
            raise ValueError(
                f"min_range {self.min_range} must be below max_range {self.max_range}")
        if self.accuracy < 0 or self.resolution < 0:
            raise ValueError("accuracy and resolution must be non-negative")

    def in_range(self, value: float) -> bool:
        return self.min_range <= value <= self.max_range

    def clamp(self, value: float) -> float:
        return max(self.min_range, min(self.max_range, value))

    def quantize(self, value: float) -> float:
        """Round to the instrument's resolution."""
        if self.resolution <= 0:
            return value
        return round(value / self.resolution) * self.resolution
