"""Wrapping a legacy, non-standard sensor protocol (§II.3, §III.B).

"The best approach to sensor networking should be inclusive of various
sensor technologies transparently" and "all the legacy sensors and their
protocols can be part of a sensor network by wrapping them without any
changes to underlying codes."

This module demonstrates exactly that: :class:`LegacyFieldStation` is a
simulated 1990s-style field instrument speaking a framed binary protocol
(command byte + register; big-endian scaled integers back) over the
network. :class:`LegacyProtocolProbe` is the probe that speaks that
protocol — and *only* the probe knows it: the ESP above it is unchanged.
"""

from __future__ import annotations

import struct
from itertools import count
from typing import Optional

from ..net.host import Host
from ..net.message import Message
from ..net.wire import Protocol
from ..sim import Environment
from .environment import PhysicalEnvironment
from .probe import BaseProbe, ProbeError
from .teds import TransducerTEDS

__all__ = ["LegacyFieldStation", "LegacyProtocolProbe",
           "CMD_READ", "CMD_IDENT", "REGISTERS"]

STATION_PORT = "legacy.station"
REPLY_PORT = "legacy.reply"

#: Protocol command bytes.
CMD_READ = 0x52   # 'R' <register:u8>  -> i32 scaled by 100
CMD_IDENT = 0x49  # 'I'                -> ascii ident string

#: Register map: register id -> measured quantity.
REGISTERS = {0x01: "temperature", 0x02: "humidity", 0x03: "pressure"}


class LegacyFieldStation:
    """The device: answers framed binary commands, knows nothing of SOA."""

    def __init__(self, host: Host, environment: PhysicalEnvironment,
                 location: tuple, ident: str = "FS-90",
                 response_delay: float = 0.05):
        self.host = host
        self.env = host.env
        self.environment = environment
        self.location = tuple(location)
        self.ident = ident
        self.response_delay = response_delay
        self.commands_served = 0
        host.open_port(STATION_PORT, self._on_frame)

    def _on_frame(self, msg: Message) -> None:
        self.env.process(self._answer(msg), name=f"legacy:{self.host.name}")

    def _answer(self, msg: Message):
        (reply_host, reply_port), seq, frame = msg.payload
        yield self.env.timeout(self.response_delay)  # slow serial bridge
        if not self.host.up:
            return
        command = frame[0]
        if command == CMD_READ and len(frame) >= 2 and frame[1] in REGISTERS:
            quantity = REGISTERS[frame[1]]
            value = self.environment.sample(quantity, self.location,
                                            self.env.now)
            payload = struct.pack(">bi", 0, int(round(value * 100)))
        elif command == CMD_IDENT:
            payload = struct.pack(">b", 0) + self.ident.encode("ascii")
        else:
            payload = struct.pack(">b", -1)  # NAK
        self.commands_served += 1
        self.host.send(reply_host, reply_port, kind="legacy-frame",
                       payload=(seq, bytes(payload)), protocol=Protocol.TCP)


class LegacyProtocolProbe(BaseProbe):
    """Probe speaking the station's binary protocol — the §II.3 wrapper."""

    def __init__(self, env: Environment, sensor_id: str, gateway: Host,
                 station_address: str, register: int = 0x01,
                 reply_timeout: float = 2.0,
                 teds: Optional[TransducerTEDS] = None, **kwargs):
        if register not in REGISTERS:
            raise ValueError(f"unknown register {register:#x}")
        quantity = REGISTERS[register]
        units = {"temperature": "celsius", "humidity": "percent",
                 "pressure": "hpa"}
        ranges = {"temperature": (-40.0, 85.0), "humidity": (0.0, 100.0),
                  "pressure": (300.0, 1100.0)}
        teds = teds or TransducerTEDS(
            manufacturer="FieldSys", model="FS-90", serial_number=sensor_id,
            version="2.3", quantity=quantity, unit=units[quantity],
            min_range=ranges[quantity][0], max_range=ranges[quantity][1],
            accuracy=1.0, resolution=0.01)
        super().__init__(env, sensor_id, teds, read_latency=0.0, **kwargs)
        self.gateway = gateway
        self.station_address = station_address
        self.register = register
        self.reply_timeout = reply_timeout
        self._pending: dict[int, object] = {}
        self._seq = count(1)
        #: Per-probe reply port, so several probes can share one gateway.
        self._reply_port = f"{REPLY_PORT}.{sensor_id}"
        gateway.open_port(self._reply_port, self._on_reply)

    def _on_reply(self, msg: Message) -> None:
        seq, frame = msg.payload
        event = self._pending.pop(seq, None)
        if event is not None and not event.triggered:
            event.succeed(frame)

    def _transact(self, frame: bytes):
        """One command/response exchange (generator)."""
        seq = next(self._seq)
        event = self.env.event()
        self._pending[seq] = event
        self.gateway.send(self.station_address, STATION_PORT,
                          kind="legacy-frame",
                          payload=((self.gateway.name, self._reply_port),
                                   seq, frame),
                          protocol=Protocol.TCP)
        timed = self.env.timeout(self.reply_timeout, value=None)
        yield self.env.any_of([event, timed])
        if not event.triggered:
            self._pending.pop(seq, None)
            raise ProbeError(
                f"{self.sensor_id}: station {self.station_address} "
                f"did not answer within {self.reply_timeout}s")
        return event.value

    def identify(self):
        """Read the station's ident string (generator)."""
        frame = yield from self._transact(bytes([CMD_IDENT]))
        status = struct.unpack_from(">b", frame)[0]
        if status != 0:
            raise ProbeError(f"{self.sensor_id}: station NAKed ident")
        return frame[1:].decode("ascii")

    def _sense(self, t: float):
        frame = yield from self._transact(bytes([CMD_READ, self.register]))
        status = struct.unpack_from(">b", frame)[0]
        if status != 0:
            raise ProbeError(
                f"{self.sensor_id}: station NAKed register {self.register:#x}")
        scaled = struct.unpack_from(">i", frame, 1)[0]
        return scaled / 100.0
