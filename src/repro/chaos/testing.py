"""Pytest harness for chaos campaigns.

``@chaos_campaign(seeds=[...])`` turns a test function into one
parametrized case per seed; each case runs a full campaign for its seed
and hands the verdict dict to the test body::

    @chaos_campaign(seeds=[1, 2, 3], horizon=60.0)
    def test_invariants_hold(verdict):
        assert verdict["ok"], verdict["invariants"]

The wrapper exposes a ``chaos_seed`` parameter (what pytest
parametrizes) and calls the body with the finished verdict — the test
never touches the runner unless it wants to (pass ``scenario=`` or a
``config=`` for non-default shapes).
"""

from __future__ import annotations

from typing import Optional

import pytest

from .campaign import CampaignConfig, CampaignRunner

__all__ = ["chaos_campaign"]


def chaos_campaign(seeds, scenario: str = "paper-lab",
                   config: Optional[CampaignConfig] = None,
                   scenario_factory=None, invariants=None, **config_kwargs):
    """Decorator: run the test once per seed with that seed's verdict.

    ``config_kwargs`` build a :class:`CampaignConfig` when ``config`` is
    not given (e.g. ``horizon=60.0, max_events=3``).
    """
    if config is None:
        config = CampaignConfig(**config_kwargs)
    elif config_kwargs:
        raise TypeError("pass either config= or config kwargs, not both")

    def decorate(fn):
        @pytest.mark.parametrize("chaos_seed", list(seeds))
        def wrapper(chaos_seed):
            runner = CampaignRunner(scenario=scenario, config=config,
                                    invariants=invariants,
                                    scenario_factory=scenario_factory)
            fn(runner.run_seed(chaos_seed))
        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate
