"""ChaosLink — per-message drop/duplicate/delay on one link.

Installed as a :meth:`~repro.net.network.Network.add_link_filter` hook for
the duration of a ``link_chaos``/``slowdown`` fault window. Decisions are
**hash-based, not stream-based**: each message's fate is a pure function
of a salt (campaign seed + event index) and the message's stable identity
(src, dst, port, kind, send time, same-key occurrence index). Drawing
from a sequential RNG here would make one link's chaos depend on how many
messages happened to cross *another* link first — hash draws keep every
decision local, so chaos composes and survives tie-break shuffling
(messages differing in any attribute get independent verdicts regardless
of processing order).
"""

from __future__ import annotations

import zlib
from collections import defaultdict

from ..net.network import LinkDecision

__all__ = ["ChaosLink"]


class ChaosLink:
    """Callable link filter matching one host pair (optionally one-sided).

    Parameters
    ----------
    a, b:
        The endpoints. Messages between them (either direction, unless
        ``directed``) are subject to chaos. ``b=None`` matches every
        message ``a`` sends or receives (used by ``slowdown``).
    drop_rate, dup_rate:
        Per-message probabilities (hash-derived).
    delay:
        Extra latency added to every matched message.
    jitter:
        Additional hash-derived uniform extra delay in ``[0, jitter)``.
    salt:
        Decision-stream name — distinct salts give independent verdicts
        for the same traffic (two overlapping chaos windows never share
        coin flips).
    """

    def __init__(self, a: str, b=None, drop_rate: float = 0.0,
                 dup_rate: float = 0.0, delay: float = 0.0,
                 jitter: float = 0.0, directed: bool = False,
                 salt: str = "chaos-link"):
        self.a = a
        self.b = b
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.delay = delay
        self.jitter = jitter
        self.directed = directed
        self.salt = salt
        #: Disambiguates messages identical in every hashed attribute
        #: (same src/dst/port/kind at the same timestamp).
        self._occurrences: dict = defaultdict(int)
        #: Counters for verdict reporting.
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def _matches(self, msg) -> bool:
        if self.b is None:
            return self.a in (msg.src, msg.dst)
        if self.directed:
            return (msg.src, msg.dst) == (self.a, self.b)
        return {msg.src, msg.dst} == {self.a, self.b}

    def _unit(self, msg, occurrence: int, channel: str) -> float:
        """A uniform [0,1) draw — a pure function of message identity.

        The CRC is post-mixed (murmur3 finalizer): CRC alone is linear, so
        two salts over same-length keys would yield XOR-*constant* streams
        — their high bits, which the rate thresholds look at, would agree
        or disagree in lockstep instead of independently.
        """
        key = (f"{self.salt}|{channel}|{msg.src}|{msg.dst}|{msg.port}|"
               f"{msg.kind}|{msg.sent_at!r}|{occurrence}")
        h = zlib.crc32(key.encode("utf-8"))
        h ^= h >> 16
        h = (h * 0x85EBCA6B) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 0xC2B2AE35) & 0xFFFFFFFF
        h ^= h >> 16
        return h / 2**32

    def __call__(self, msg):
        if not self._matches(msg):
            return None
        occ_key = (msg.src, msg.dst, msg.port, msg.kind, msg.sent_at)
        occurrence = self._occurrences[occ_key]
        self._occurrences[occ_key] = occurrence + 1
        if self.drop_rate and self._unit(msg, occurrence, "drop") < self.drop_rate:
            self.dropped += 1
            return LinkDecision(drop=True)
        extra = self.delay
        if self.jitter:
            extra += self._unit(msg, occurrence, "jitter") * self.jitter
        copies = ()
        if self.dup_rate and self._unit(msg, occurrence, "dup") < self.dup_rate:
            self.duplicated += 1
            # The duplicate trails the original by a hash-derived stagger,
            # reusing the original's latency draw (no extra RNG stream).
            copies = (0.001 + self._unit(msg, occurrence, "stagger") * 0.05,)
        if extra or copies:
            if extra:
                self.delayed += 1
            return LinkDecision(extra_delay=extra, copies=copies)
        return None
