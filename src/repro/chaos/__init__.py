"""Deterministic chaos engine: seeded fault campaigns, end-to-end
invariants and failure-schedule shrinking.

The attack side of the determinism contract: :mod:`plan` derives fault
schedules from a seed, :mod:`injectors` executes them against a live
deployment, :mod:`invariants` judges what must still hold afterwards,
:mod:`shrink` minimizes any schedule that broke something, and
:mod:`campaign` ties it together per seed. ``repro chaos`` is the CLI
face; ``@chaos_campaign`` the pytest one.
"""

from .campaign import (
    SCENARIOS,
    CampaignConfig,
    CampaignRunner,
    ScenarioContext,
    WarmSession,
    campaign_json,
    mttr_from_transitions,
    verdict_json,
)
from .injectors import InjectorEngine
from .invariants import (
    Invariant,
    InvariantResult,
    OverloadGraceful,
    RunRecord,
    builtin_invariants,
    evaluate_invariants,
)
from .link import ChaosLink
from .plan import FAULT_KINDS, ChaosPlan, FaultEvent, TargetCatalog
from .shrink import ShrinkResult, shrink_failing_seed, shrink_plan

__all__ = [
    "CampaignConfig", "CampaignRunner", "ScenarioContext", "SCENARIOS",
    "WarmSession", "campaign_json", "verdict_json", "mttr_from_transitions",
    "InjectorEngine", "ChaosLink",
    "Invariant", "InvariantResult", "OverloadGraceful", "RunRecord",
    "builtin_invariants", "evaluate_invariants",
    "ChaosPlan", "FaultEvent", "TargetCatalog", "FAULT_KINDS",
    "ShrinkResult", "shrink_plan", "shrink_failing_seed",
]
