"""Chaos plans — declarative, seed-derived fault schedules.

A :class:`ChaosPlan` is a list of :class:`FaultEvent`s: what to break,
when, for how long, with what parameters. Plans are *values*: fully
derived from one seed via :func:`ChaosPlan.generate` (one named substream,
no hidden draws at execution time), serializable to canonical JSON
(:meth:`ChaosPlan.to_json` is byte-stable — ``sort_keys`` + compact
separators + rounded floats) and replayable bit-for-bit. The shrinker
works on plans as data: dropping events or narrowing windows yields a new
plan with the same schema, so a minimal counterexample is just another
plan JSON checked into a regression test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..util.rng import substream

__all__ = ["FaultEvent", "ChaosPlan", "FAULT_KINDS"]

#: The fault taxonomy (see DESIGN.md §9). Values are the knobs each kind
#: reads from ``FaultEvent.params``.
FAULT_KINDS = (
    "crash",           # host down for the window, recovered at the end
    "partition",       # symmetric link cut target="a|b", healed at the end
    "partition_asym",  # directed cut target="src>dst", healed at the end
    "link_chaos",      # drop/dup/delay on a link: params drop_rate,
                       # dup_rate, delay, jitter
    "slowdown",        # pure added latency on every message of one host
    "lease_churn",     # force-expire the target service's LUS lease every
                       # params["interval"] seconds inside the window
    "txn_abort",       # abort every ACTIVE transaction at window start
    "tenant-burst",    # one tenant's offered load spikes by params["factor"]
                       # for the window (needs a load engine attached)
)

_ROUND = 3  # decimals kept in generated/serialized floats


def _r(x: float) -> float:
    return round(float(x), _ROUND)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: ``kind`` applied to ``target`` over a window."""

    kind: str
    target: str
    start: float
    duration: float
    params: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "target": self.target,
               "start": _r(self.start), "duration": _r(self.duration)}
        if self.params:
            out["params"] = {k: (_r(v) if isinstance(v, float) else v)
                             for k, v in sorted(self.params.items())}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(kind=data["kind"], target=data["target"],
                   start=float(data["start"]),
                   duration=float(data["duration"]),
                   params=dict(data.get("params", {})))


@dataclass
class ChaosPlan:
    """A seed-stamped fault schedule against one scenario."""

    seed: int
    scenario: str
    events: list
    horizon: float

    @property
    def last_fault_end(self) -> float:
        return max((event.end for event in self.events), default=0.0)

    def replace(self, events) -> "ChaosPlan":
        return ChaosPlan(seed=self.seed, scenario=self.scenario,
                         events=list(events), horizon=self.horizon)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "scenario": self.scenario,
                "horizon": _r(self.horizon),
                "events": [event.to_dict() for event in self.events]}

    def to_json(self) -> str:
        """Canonical byte-stable JSON (one trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        return cls(seed=int(data["seed"]), scenario=data["scenario"],
                   horizon=float(data["horizon"]),
                   events=[FaultEvent.from_dict(e) for e in data["events"]])

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, targets: "TargetCatalog",
                 scenario: str = "paper-lab", horizon: float = 90.0,
                 min_events: int = 2, max_events: int = 5,
                 fault_window: tuple = (10.0, 0.55)) -> "ChaosPlan":
        """Derive a plan from ``seed`` alone.

        Every draw comes from the ``("chaos", "plan")`` substream in a
        fixed order, so the same seed always yields the same plan and the
        plan stream is independent of every other consumer of the seed.
        Fault starts fall in ``[fault_window[0], horizon*fault_window[1]]``
        — the tail of the horizon is a guaranteed recovery window, which
        the convergence invariants rely on.
        """
        rng = substream(seed, "chaos", "plan")
        lo, hi = fault_window[0], horizon * fault_window[1]
        count = int(rng.integers(min_events, max_events + 1))
        events = []
        for _ in range(count):
            kind = targets.kinds[int(rng.integers(len(targets.kinds)))]
            start = _r(lo + float(rng.random()) * (hi - lo))
            duration = _r(2.0 + float(rng.random()) * 10.0)
            target, params = targets.draw(kind, rng)
            events.append(FaultEvent(kind=kind, target=target, start=start,
                                     duration=duration, params=params))
        events.sort(key=lambda e: (e.start, e.kind, e.target))
        return cls(seed=seed, scenario=scenario, events=events,
                   horizon=horizon)


class TargetCatalog:
    """What a scenario offers to break — target pools per fault kind.

    Keeps plan generation scenario-agnostic: the campaign hands the
    generator a catalog listing crashable hosts, partitionable host pairs
    and churnable service names. Pools deliberately exclude single points
    of infrastructure the invariants assume survive (the LUS host, txn
    manager, facade, browser): the engine attacks the *federation*, not
    the experiment harness.
    """

    def __init__(self, crash_hosts, link_pairs, churn_services,
                 kinds=FAULT_KINDS, tenants=()):
        self.crash_hosts = tuple(crash_hosts)
        self.link_pairs = tuple(tuple(pair) for pair in link_pairs)
        self.churn_services = tuple(churn_services)
        #: Tenant names whose offered load a tenant-burst may spike.
        #: Empty (the default) excludes the kind, so catalogs predating
        #: load scenarios generate byte-identical plans.
        self.tenants = tuple(tenants)
        self.kinds = tuple(k for k in kinds if self._supported(k))

    def _supported(self, kind: str) -> bool:
        if kind == "crash":
            return bool(self.crash_hosts)
        if kind in ("partition", "partition_asym", "link_chaos"):
            return bool(self.link_pairs)
        if kind == "slowdown":
            return bool(self.crash_hosts)
        if kind == "lease_churn":
            return bool(self.churn_services)
        if kind == "tenant-burst":
            return bool(self.tenants)
        return kind == "txn_abort"

    def draw(self, kind: str, rng) -> tuple:
        """Pick (target, params) for ``kind`` using draws from ``rng``."""
        if kind == "crash":
            return self.crash_hosts[int(rng.integers(len(self.crash_hosts)))], {}
        if kind == "partition":
            a, b = self.link_pairs[int(rng.integers(len(self.link_pairs)))]
            return f"{a}|{b}", {}
        if kind == "partition_asym":
            a, b = self.link_pairs[int(rng.integers(len(self.link_pairs)))]
            if rng.random() < 0.5:
                a, b = b, a
            return f"{a}>{b}", {}
        if kind == "link_chaos":
            a, b = self.link_pairs[int(rng.integers(len(self.link_pairs)))]
            return f"{a}|{b}", {
                "drop_rate": _r(float(rng.random()) * 0.25),
                "dup_rate": _r(float(rng.random()) * 0.2),
                "delay": _r(float(rng.random()) * 0.3),
                "jitter": _r(float(rng.random()) * 0.1)}
        if kind == "slowdown":
            host = self.crash_hosts[int(rng.integers(len(self.crash_hosts)))]
            return host, {"delay": _r(0.1 + float(rng.random()) * 0.5)}
        if kind == "lease_churn":
            name = self.churn_services[
                int(rng.integers(len(self.churn_services)))]
            return name, {"interval": _r(1.0 + float(rng.random()) * 2.0)}
        if kind == "txn_abort":
            return "*", {}
        if kind == "tenant-burst":
            tenant = self.tenants[int(rng.integers(len(self.tenants)))]
            return tenant, {"factor": _r(4.0 + float(rng.random()) * 8.0)}
        raise ValueError(f"unknown fault kind {kind!r}")


__all__.append("TargetCatalog")
