"""Injectors — executing a ChaosPlan against a live deployment.

The :class:`InjectorEngine` turns plan events into kernel processes that
flip real system state at the scheduled times: host crash/recover, link
cuts (symmetric and directed), ChaosLink install/remove, LUS lease
storms, transaction aborts. Overlapping windows compose through
refcounts — a host crashed by two overlapping events recovers only when
the *last* window closes, a link cut twice heals on the second heal —
so shrinking (which drops arbitrary subsets of events) never leaves the
system in a half-restored state.
"""

from __future__ import annotations

from collections import Counter

from ..sim import Interrupt
from .link import ChaosLink

__all__ = ["InjectorEngine"]


class InjectorEngine:
    """Executes plan events against a network (and optional LUS/txn mgr)."""

    def __init__(self, net, lus=None, txn_manager=None, seed: int = 0,
                 load_engine=None):
        self.net = net
        self.env = net.env
        self.lus = lus
        self.txn_manager = txn_manager
        self.seed = seed
        #: OpenLoopEngine for tenant-burst faults (None = kind is a no-op).
        self.load_engine = load_engine
        self._host_down: Counter = Counter()
        self._cuts: Counter = Counter()
        self._cuts_directed: Counter = Counter()
        #: ChaosLinks installed over the run, kept for verdict accounting.
        self.links: list = []
        #: Fault applications actually performed, per kind.
        self.applied: Counter = Counter()

    def apply(self, plan) -> None:
        """Schedule every event of ``plan`` (call before env.run)."""
        for index, event in enumerate(plan.events):
            self.env.process(self._run_event(event, index),
                             name=f"chaos:{event.kind}:{index}")

    # -- event execution ------------------------------------------------------

    def _run_event(self, event, index: int):
        delay = event.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        kind = event.kind
        self.applied[kind] += 1
        if kind == "crash":
            self._host_fail(event.target)
            yield self.env.timeout(event.duration)
            self._host_restore(event.target)
        elif kind == "partition":
            a, b = event.target.split("|")
            self._cut(a, b)
            yield self.env.timeout(event.duration)
            self._heal(a, b)
        elif kind == "partition_asym":
            src, dst = event.target.split(">")
            self._cut_directed(src, dst)
            yield self.env.timeout(event.duration)
            self._heal_directed(src, dst)
        elif kind in ("link_chaos", "slowdown"):
            link = self._make_link(event, index)
            self.net.add_link_filter(link)
            self.links.append(link)
            yield self.env.timeout(event.duration)
            self.net.remove_link_filter(link)
        elif kind == "lease_churn":
            yield from self._churn(event)
        elif kind == "txn_abort":
            yield from self._abort_active_txns()
        elif kind == "tenant-burst":
            if self.load_engine is not None:
                # The burst self-expires at event.end (burst_factor checks
                # the clock), so overlapping windows need no refcount: the
                # widest window wins, which is what overload should see.
                self.load_engine.burst(event.target,
                                       float(event.params.get("factor", 10.0)),
                                       until=event.end)
            yield self.env.timeout(event.duration)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    def _make_link(self, event, index: int) -> ChaosLink:
        salt = f"{self.seed}:{index}:{event.kind}"
        params = event.params
        if event.kind == "slowdown":
            return ChaosLink(event.target, None,
                             delay=params.get("delay", 0.2), salt=salt)
        a, b = event.target.split("|")
        return ChaosLink(a, b,
                         drop_rate=params.get("drop_rate", 0.0),
                         dup_rate=params.get("dup_rate", 0.0),
                         delay=params.get("delay", 0.0),
                         jitter=params.get("jitter", 0.0), salt=salt)

    def _churn(self, event):
        if self.lus is None:
            return
        interval = max(0.5, float(event.params.get("interval", 2.0)))
        end = event.end
        while self.env.now < end:
            self.lus.expire_registrations(
                None if event.target == "*" else event.target)
            yield self.env.timeout(interval)

    def _abort_active_txns(self):
        manager = self.txn_manager
        if manager is None:
            return
        for txn_id in sorted(manager._txns):
            txn = manager._txns[txn_id]
            if txn.state.value != "active":
                continue
            try:
                yield from manager.abort(txn_id)
            except Interrupt:
                raise
            except Exception:
                pass  # racing a commit that just finished — fine

    # -- refcounted primitives -------------------------------------------------

    def _host_fail(self, name: str) -> None:
        self._host_down[name] += 1
        if self._host_down[name] == 1:
            self.net.hosts[name].fail()

    def _host_restore(self, name: str) -> None:
        self._host_down[name] -= 1
        if self._host_down[name] == 0:
            self.net.hosts[name].recover()

    def _cut(self, a: str, b: str) -> None:
        key = frozenset((a, b))
        self._cuts[key] += 1
        if self._cuts[key] == 1:
            self.net.cut_link(a, b)

    def _heal(self, a: str, b: str) -> None:
        key = frozenset((a, b))
        self._cuts[key] -= 1
        if self._cuts[key] == 0:
            self.net.heal_link(a, b)

    def _cut_directed(self, src: str, dst: str) -> None:
        self._cuts_directed[(src, dst)] += 1
        if self._cuts_directed[(src, dst)] == 1:
            self.net.cut_link_directed(src, dst)

    def _heal_directed(self, src: str, dst: str) -> None:
        self._cuts_directed[(src, dst)] -= 1
        if self._cuts_directed[(src, dst)] == 0:
            self.net.heal_link_directed(src, dst)

    # -- accounting -----------------------------------------------------------

    def link_stats(self) -> dict:
        return {
            "dropped": sum(link.dropped for link in self.links),
            "duplicated": sum(link.duplicated for link in self.links),
            "delayed": sum(link.delayed for link in self.links),
        }
