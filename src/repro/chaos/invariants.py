"""End-to-end invariants — what must hold after any fault campaign.

Each invariant is an oracle over a finished run (:class:`RunRecord`):
it returns a list of violation strings, empty meaning the property held.
The built-ins cover the guarantees PRs 1–4 claim:

* ``workload-accounting`` — every request the workload issued completed
  or failed; nothing lost in flight; every exertion span closed.
* ``trace-integrity`` — parent links resolve, children start after
  parents, spans end after they start (the promoted trace helpers below
  are the same ones integration tests use via ``tests/helpers/tracing``).
* ``txn-atomicity`` — no transaction left mid-vote; terminal
  transactions hold no space takes.
* ``space-exactly-once`` — no envelope stranded TAKEN after quiesce.
* ``health-convergence`` — every tracked entity reports UP within K
  evaluation windows of the last fault clearing.
* ``breaker-liberation`` — no circuit breaker is wedged: after heal +
  quiesce every breaker would admit a call (the half-open probe-leak
  class of bug).
* ``sim-sanity`` — no recorded sanitizer violations, sim time within
  the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

__all__ = [
    "RunRecord", "InvariantResult", "Invariant", "OverloadGraceful",
    "builtin_invariants", "evaluate_invariants",
    # promoted trace helpers (tests/helpers/tracing re-exports these)
    "assert_span_tree", "assert_no_orphan_spans", "spans_between",
    "tree_shape", "trace_integrity_violations",
]


# ---------------------------------------------------------------------------
# Trace helpers — promoted from tests/helpers/tracing.py so production
# invariants and tests share one implementation.
# ---------------------------------------------------------------------------

def _match_spec(tracer, span, spec, path: str, errors: list) -> bool:
    pattern, children = spec
    if not fnmatchcase(span.name, pattern):
        return False
    if children is Ellipsis:
        return True
    actual = tracer.children(span)
    used: set = set()
    last_start = float("-inf")
    for child_spec in children:
        found = None
        for index, candidate in enumerate(actual):
            if index in used or candidate.started_at < last_start:
                continue
            if _match_spec(tracer, candidate, child_spec,
                           f"{path}/{span.name}", errors):
                found = index
                break
        if found is None:
            errors.append(
                f"under {path}/{span.name}: no child matching "
                f"{child_spec[0]!r} (starting at or after t={last_start:g}); "
                f"actual children: {[c.name for c in actual]}")
            return False
        used.add(found)
        last_start = actual[found].started_at
    return True


def assert_span_tree(tracer, spec, root=None):
    """Assert some recorded trace tree matches ``spec``; returns its root.

    With ``root`` given, that specific tree must match. Otherwise every
    recorded root is tried and one must match. Names match with
    :mod:`fnmatch` wildcards; ``Ellipsis`` children mean "any"; siblings
    starting at the same simulated time match in any permutation (their
    order is tie-breaker territory, deliberately not part of the
    determinism contract).
    """
    if root is not None:
        errors: list = []
        assert _match_spec(tracer, root, spec, "", errors), \
            f"span tree rooted at {root.name!r} does not match {spec[0]!r}: " \
            + "; ".join(errors)
        return root
    roots = tracer.roots()
    for candidate in roots:
        if _match_spec(tracer, candidate, spec, "", []):
            return candidate
    raise AssertionError(
        f"no recorded trace matches {spec[0]!r}; roots: "
        f"{[r.name for r in roots]}")


def trace_integrity_violations(tracer) -> list:
    """Violation strings for broken parent links / time-travelling spans."""
    violations = []
    for span in tracer.spans:
        if span.parent_id is not None:
            parent = tracer.get(span.parent_id)
            if parent is None:
                violations.append(
                    f"span {span.span_id} ({span.name!r}) links to unknown "
                    f"parent {span.parent_id!r}")
            elif parent.started_at > span.started_at:
                violations.append(
                    f"span {span.span_id} ({span.name!r}) starts before "
                    f"its parent")
        if span.ended_at is not None and span.ended_at < span.started_at:
            violations.append(
                f"span {span.span_id} ({span.name!r}) ends before it starts")
    return violations


def assert_no_orphan_spans(tracer) -> None:
    """Every parent link resolves and no span ends before it starts."""
    violations = trace_integrity_violations(tracer)
    assert not violations, "; ".join(violations)


def spans_between(tracer, start: float, end: float, kind: str = None) -> list:
    """Spans that *started* within ``[start, end]`` simulation seconds."""
    return [span for span in tracer.spans
            if start <= span.started_at <= end
            and (kind is None or span.kind == kind)]


def tree_shape(tracer, span):
    """The tree as nested ``(name, status, [children...])`` tuples —
    a hashable shape for determinism comparisons."""
    return (span.name, span.status,
            tuple(tree_shape(tracer, child)
                  for child in tracer.children(span)))


# ---------------------------------------------------------------------------
# Run record + invariant protocol
# ---------------------------------------------------------------------------

@dataclass
class RunRecord:
    """Everything an oracle may inspect about one finished campaign run."""

    env: object
    net: object
    plan: object
    health: object = None          # HealthMonitor (or None)
    tracer: object = None
    txn_managers: tuple = ()
    spaces: tuple = ()
    issued: int = 0
    completed: int = 0
    failed: int = 0
    inflight: int = 0
    #: Evaluation window of the health model, for convergence bounds.
    health_interval: float = 1.0
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class InvariantResult:
    name: str
    ok: bool
    violations: tuple = ()

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok,
                "violations": list(self.violations)}


class Invariant:
    """Base class: subclasses set ``name`` and implement ``violations``."""

    name = "invariant"

    def violations(self, record: RunRecord) -> list:  # pragma: no cover
        raise NotImplementedError

    def check(self, record: RunRecord) -> InvariantResult:
        found = self.violations(record)
        return InvariantResult(self.name, not found, tuple(found))


class WorkloadAccounting(Invariant):
    """No request lost: issued == completed + failed, nothing in flight,
    and every exertion span reached a terminal state."""

    name = "workload-accounting"

    def violations(self, record: RunRecord) -> list:
        out = []
        if record.issued != record.completed + record.failed:
            out.append(
                f"issued {record.issued} != completed {record.completed} "
                f"+ failed {record.failed}")
        if record.inflight:
            out.append(f"{record.inflight} request(s) still in flight "
                       "after quiesce")
        if record.tracer is not None:
            open_exerts = [span for span in record.tracer.spans
                           if span.kind == "exert" and span.ended_at is None]
            if open_exerts:
                out.append(
                    f"{len(open_exerts)} exert span(s) never closed, e.g. "
                    f"{open_exerts[0].name!r}")
        return out


class TraceIntegrity(Invariant):
    name = "trace-integrity"

    def violations(self, record: RunRecord) -> list:
        if record.tracer is None:
            return []
        return trace_integrity_violations(record.tracer)[:5]


class TxnAtomicity(Invariant):
    """2PC left nothing half-done: no txn stuck VOTING, and terminal
    transactions hold no space takes."""

    name = "txn-atomicity"

    def violations(self, record: RunRecord) -> list:
        out = []
        terminal = set()
        for manager in record.txn_managers:
            for txn_id in sorted(manager._txns):
                state = manager._txns[txn_id].state.value
                if state == "voting":
                    out.append(f"txn {txn_id} stuck in VOTING")
                if state in ("committed", "aborted"):
                    terminal.add(txn_id)
        for space in record.spaces:
            for txn_id in sorted(space._txn_takes):
                if txn_id in terminal:
                    out.append(
                        f"space holds takes for terminal txn {txn_id}")
        return out


class SpaceExactlyOnce(Invariant):
    """No envelope stranded TAKEN after quiesce: a worker that took an
    entry either finished it (DONE) or its transaction restored it."""

    name = "space-exactly-once"

    def violations(self, record: RunRecord) -> list:
        out = []
        for space in record.spaces:
            for envelope_id in sorted(space._envelopes):
                envelope = space._envelopes[envelope_id]
                if envelope.state.value == "taken":
                    out.append(f"envelope {envelope_id} left TAKEN")
        return out


class HealthConvergence(Invariant):
    """Every tracked entity is UP at the end and reached UP within K
    evaluation windows of the last fault clearing."""

    name = "health-convergence"

    def __init__(self, windows: int = 25):
        self.windows = windows

    def violations(self, record: RunRecord) -> list:
        if record.health is None:
            return []
        out = []
        model = record.health.model
        for entity in sorted(model._status):
            status = model._status[entity]
            if status != "UP":
                out.append(f"{entity} ended {status}")
        bound = (record.plan.last_fault_end
                 + self.windows * record.health_interval)
        for entity in sorted({t["entity"] for t in model.transitions}):
            last = [t for t in model.transitions if t["entity"] == entity][-1]
            if last["to"] == "UP" and last["t"] > bound:
                out.append(
                    f"{entity} only recovered at t={last['t']:.1f} "
                    f"(> {bound:.1f} = last fault end + {self.windows} "
                    "windows)")
        return out


class BreakerLiberation(Invariant):
    """After heal + quiesce, no breaker refuses forever: OPEN breakers
    must be past their reset timeout (next call probes) and HALF_OPEN
    breakers must have a probe slot free or reclaimable."""

    name = "breaker-liberation"

    def violations(self, record: RunRecord) -> list:
        out = []
        now = record.env.now
        for host_name in sorted(record.net.hosts):
            registry = getattr(record.net.hosts[host_name],
                               "_breaker_registry", None)
            if registry is None:
                continue
            for key in sorted(registry._breakers):
                breaker = registry._breakers[key]
                state = breaker.state.value
                if state == "open":
                    if (breaker.opened_at is not None
                            and now - breaker.opened_at < breaker.reset_timeout):
                        continue  # recently opened; will half-open in time
                elif state == "half_open":
                    if breaker._probes_in_flight < breaker.half_open_probes:
                        continue
                    last = getattr(breaker, "_last_probe_at", None)
                    if last is not None and now - last >= breaker.reset_timeout:
                        continue  # stale probe is reclaimable
                    out.append(
                        f"{host_name}: breaker {key} wedged half-open "
                        f"({breaker._probes_in_flight} probe(s) pinned)")
        return out


class OverloadGraceful(Invariant):
    """Saturation stayed graceful: reads ``record.extra["load"]`` (an
    :meth:`~repro.load.engine.OpenLoopEngine.summary`), vacuously passing
    when no load engine ran. Checks

    * accounting — every offered request is exactly one of completed /
      rejected / failed, nothing in flight after drain (no lost-but-acked
      exertions);
    * bounded latency — admitted work's p99 stays under the tenants' max
      deadline plus slack (queues are bounded, so waiting is too). The
      default slack is one RPC timeout: chaos faults (slowdown links,
      crashes mid-call) legitimately stretch an admitted request by up
      to a timeout beyond its deadline, while unbounded queueing shows
      up as tails of tens of seconds;
    * goodput floor — completed-within-deadline work never collapses
      below ``goodput_floor`` of offered load, however hard the engine
      pushed past saturation;
    * failure ceiling — shed load must be *rejected*, not failed: typed
      rejections are the control plane working, failures are not.
    """

    name = "overload-graceful"

    def __init__(self, p99_bound: Optional[float] = None,
                 goodput_floor: float = 0.3,
                 failure_ceiling: float = 0.25,
                 p99_slack: float = 5.0):
        self.p99_bound = p99_bound
        self.goodput_floor = goodput_floor
        self.failure_ceiling = failure_ceiling
        self.p99_slack = p99_slack

    def violations(self, record: RunRecord) -> list:
        load = record.extra.get("load")
        if not load:
            return []
        out = []
        total = load["total"]
        offered = total["offered"]
        accounted = total["completed"] + total["rejected"] + total["failed"]
        if offered != accounted:
            out.append(f"load accounting: offered {offered} != completed "
                       f"{total['completed']} + rejected {total['rejected']} "
                       f"+ failed {total['failed']}")
        if load.get("inflight"):
            out.append(f"{load['inflight']} load request(s) still in flight "
                       "after drain")
        bound = (self.p99_bound if self.p99_bound is not None
                 else load.get("deadline_max", 0.0) + self.p99_slack)
        p99 = total["latency"].get("p99")
        if p99 is not None and p99 > bound:
            out.append(f"admitted-work p99 {p99:.3f}s exceeds bound "
                       f"{bound:.3f}s")
        if offered:
            goodput_rate = total["goodput"] / offered
            if goodput_rate < self.goodput_floor:
                out.append(f"goodput collapsed: {goodput_rate:.3f} of "
                           f"offered load < floor {self.goodput_floor}")
            failure_rate = total["failed"] / offered
            if failure_rate > self.failure_ceiling:
                out.append(f"failure rate {failure_rate:.3f} over ceiling "
                           f"{self.failure_ceiling} — overload must shed "
                           "typed rejections, not failures")
        return out


class SimSanity(Invariant):
    """The kernel's own contract: time inside the horizon, no recorded
    race-sanitizer violations."""

    name = "sim-sanity"

    def violations(self, record: RunRecord) -> list:
        out = []
        if record.env.now > record.plan.horizon + 1e-6:
            out.append(f"sim time {record.env.now} ran past horizon "
                       f"{record.plan.horizon}")
        sanitizer = getattr(record.env, "sanitizer", None)
        recorded = getattr(sanitizer, "violations", None) if sanitizer else None
        if recorded:
            out.append(f"{len(recorded)} sanitizer violation(s), first: "
                       f"{recorded[0]}")
        return out


def builtin_invariants(convergence_windows: int = 25) -> list:
    return [
        WorkloadAccounting(),
        TraceIntegrity(),
        TxnAtomicity(),
        SpaceExactlyOnce(),
        HealthConvergence(windows=convergence_windows),
        BreakerLiberation(),
        OverloadGraceful(),
        SimSanity(),
    ]


def evaluate_invariants(record: RunRecord,
                        invariants: Optional[list] = None) -> list:
    """Run every oracle; returns :class:`InvariantResult` per invariant."""
    invariants = invariants if invariants is not None else builtin_invariants()
    return [invariant.check(record) for invariant in invariants]
