"""Campaigns — N seeded chaos plans against a scenario, with verdicts.

A campaign run is: build the scenario fresh, settle, start a steady
workload, execute the seed's fault plan, quiesce, then judge every
invariant. The verdict is plain data with canonical JSON rendering —
``repro chaos run --json`` is byte-identical across invocations of the
same build (and across ``REPRO_SHUFFLE_SEED`` values: nothing in the
pipeline depends on tie-break order).

The scenario seed stays fixed (the deployment under test is a constant);
the *campaign* seed varies and fully determines the fault schedule.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from ..sim import Interrupt
from .injectors import InjectorEngine
from .invariants import RunRecord, builtin_invariants, evaluate_invariants
from .plan import ChaosPlan, TargetCatalog

__all__ = ["CampaignConfig", "CampaignRunner", "ScenarioContext",
           "SCENARIOS", "WarmSession", "verdict_json", "campaign_json",
           "mttr_from_transitions"]


@dataclass
class CampaignConfig:
    """Knobs shared by every run of a campaign."""

    horizon: float = 90.0          # total simulated seconds per run
    settle: float = 6.0            # discovery/join convergence time
    workload_period: float = 2.0   # seconds between workload requests
    stop_margin: float = 15.0      # stop issuing this long before horizon
    convergence_windows: int = 25  # health must recover within K windows
    scenario_seed: int = 2009      # the deployment under test is fixed
    min_events: int = 2
    max_events: int = 5


@dataclass
class ScenarioContext:
    """Everything the runner needs from a built scenario."""

    env: object
    net: object
    catalog: TargetCatalog
    request: object                 # generator fn(target) -> value
    targets: list                   # workload rotation
    lus: object = None
    txn_managers: tuple = ()
    spaces: tuple = ()
    health: object = None
    tracer: object = None
    prepare: object = None          # optional one-shot setup generator fn
    load_engine: object = None      # OpenLoopEngine (overload scenarios)


def _build_paper_lab(config: CampaignConfig) -> ScenarioContext:
    from ..observability import tracer_of
    from ..scenarios.paper_lab import SENSOR_NAMES, build_paper_lab
    lab = build_paper_lab(seed=config.scenario_seed)
    sensors = list(SENSOR_NAMES)
    sensor_hosts = [f"{name.split('-')[0].lower()}-host" for name in sensors]
    catalog = TargetCatalog(
        crash_hosts=sensor_hosts + ["cybernode-0", "cybernode-1",
                                    "composite-host"],
        link_pairs=([(host, "persimmon") for host in sensor_hosts]
                    + [(host, "composite-host") for host in sensor_hosts]
                    + [("composite-host", "facade-host")]),
        churn_services=sensors + ["Composite-Service"])

    def prepare():
        yield from lab.browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        yield from lab.browser.add_expression(
            "Composite-Service", "(a + b + c)/3")

    return ScenarioContext(
        env=lab.env, net=lab.net, catalog=catalog,
        request=lab.browser.get_value,
        targets=sensors + ["Composite-Service"],
        lus=lab.lus, txn_managers=(lab.txn_manager,), spaces=(),
        health=lab.health, tracer=tracer_of(lab.net), prepare=prepare)


def _build_paper_lab_load(config: CampaignConfig) -> ScenarioContext:
    """The paper lab behind admission control, under open-loop load.

    Capacity is deliberately tight (2 slots, ~0.15s service time → ~13
    req/s) against ~12 req/s offered, so the lab sits just below the knee
    at baseline and every ``tenant-burst`` or ``slowdown`` pushes it past
    saturation — the regime the overload oracle judges.
    """
    from ..observability import tracer_of
    from ..load import TenantSpec, build_load_lab
    from ..scenarios.paper_lab import SENSOR_NAMES
    sensors = list(SENSOR_NAMES)
    tenants = (
        TenantSpec("gold", rate=6.0, weight=3.0, deadline=2.0,
                   targets=SENSOR_NAMES),
        TenantSpec("silver", rate=4.0, weight=2.0, deadline=2.0,
                   targets=SENSOR_NAMES),
        TenantSpec("bronze", rate=2.0, weight=1.0, deadline=2.0,
                   targets=SENSOR_NAMES),
    )
    # The runner settles and starts the engine itself; arrivals stop at
    # the same stop_margin as the closed-loop workload so health can
    # converge inside the horizon.
    duration = config.horizon - config.settle - config.stop_margin
    load_lab = build_load_lab(
        seed=config.scenario_seed, tenants=tenants, duration=duration,
        scale=1.0, max_inflight=2, max_queue=8, esp_overhead=0.12,
        settle=0.0)
    lab = load_lab.lab
    sensor_hosts = [f"{name.split('-')[0].lower()}-host" for name in sensors]
    catalog = TargetCatalog(
        crash_hosts=sensor_hosts + ["cybernode-0", "cybernode-1"],
        link_pairs=[(host, "persimmon") for host in sensor_hosts],
        churn_services=sensors,
        kinds=("crash", "partition", "slowdown", "tenant-burst"),
        tenants=tuple(spec.name for spec in tenants))

    def prepare():
        yield from lab.browser.compose_service(
            "Composite-Service",
            ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
        yield from lab.browser.add_expression(
            "Composite-Service", "(a + b + c)/3")

    return ScenarioContext(
        env=lab.env, net=lab.net, catalog=catalog,
        request=lab.browser.get_value,
        targets=sensors + ["Composite-Service"],
        lus=lab.lus, txn_managers=(lab.txn_manager,), spaces=(),
        health=lab.health, tracer=tracer_of(lab.net), prepare=prepare,
        load_engine=load_lab.engine)


#: Scenario registry: name -> factory(config) -> ScenarioContext.
SCENARIOS = {"paper-lab": _build_paper_lab,
             "paper-lab-load": _build_paper_lab_load}


def mttr_from_transitions(transitions) -> dict:
    """Recovery accounting from the health model's transition log.

    An incident opens when an entity leaves UP and closes when it returns;
    the intermediate DEGRADED→DOWN hops stay inside one incident.
    """
    open_since: dict = {}
    durations: list = []
    for transition in transitions:
        entity = transition["entity"]
        if transition["from"] == "UP" and transition["to"] != "UP":
            open_since.setdefault(entity, transition["t"])
        elif transition["to"] == "UP" and entity in open_since:
            durations.append(transition["t"] - open_since.pop(entity))
    mttr = (round(sum(durations) / len(durations), 3)
            if durations else None)
    return {"incidents": len(durations) + len(open_since),
            "recovered": len(durations),
            "unrecovered": len(open_since),
            "mttr": mttr}


class CampaignRunner:
    """Runs seeded chaos plans against one scenario and collects verdicts."""

    def __init__(self, scenario: str = "paper-lab",
                 config: Optional[CampaignConfig] = None,
                 invariants: Optional[list] = None,
                 scenario_factory=None):
        if scenario_factory is None and scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; "
                             f"known: {', '.join(sorted(SCENARIOS))}")
        self.scenario = scenario
        self.config = config if config is not None else CampaignConfig()
        self._factory = (scenario_factory if scenario_factory is not None
                         else SCENARIOS[scenario])
        self._invariants = invariants

    # -- plan derivation -------------------------------------------------------

    def plan_for(self, seed: int) -> ChaosPlan:
        """The seed's fault schedule (no simulation; pure derivation)."""
        context = self._factory(self.config)
        return self._generate(seed, context.catalog)

    def _generate(self, seed: int, catalog: TargetCatalog) -> ChaosPlan:
        return ChaosPlan.generate(
            seed, catalog, scenario=self.scenario,
            horizon=self.config.horizon,
            min_events=self.config.min_events,
            max_events=self.config.max_events)

    # -- execution -------------------------------------------------------------

    def run_seed(self, seed: int) -> dict:
        return self.run_plan(None, seed=seed)

    def run_plan(self, plan: Optional[ChaosPlan], seed: Optional[int] = None,
                 invariants: Optional[list] = None,
                 checkpointer=None) -> dict:
        """Execute one campaign run; returns the verdict dict.

        ``checkpointer``, when given, is a callable invoked with the
        fresh environment right after the scenario build and before any
        simulated time passes — the snapshot layer uses it to attach a
        :class:`repro.snapshot.checkpoint.Checkpointer` whose schedule
        is then part of the deterministic event order (so a restored
        replay reproduces the run exactly).
        """
        config = self.config
        context = self._factory(config)
        env = context.env
        if plan is None:
            plan = self._generate(seed, context.catalog)
        if checkpointer is not None:
            checkpointer(env)
        env.run(until=env.now + config.settle)
        counts = {"issued": 0, "completed": 0, "failed": 0, "inflight": 0}
        engine = self._launch_faults(context, plan)
        env.process(self._workload(context, counts,
                                   stop_at=plan.horizon - config.stop_margin),
                    name="chaos-workload")
        if context.load_engine is not None:
            env.process(context.load_engine.run(), name="load-engine")
        env.run(until=plan.horizon)
        return self._judge(context, plan, engine, counts, invariants)

    def _launch_faults(self, context: ScenarioContext,
                       plan: ChaosPlan) -> InjectorEngine:
        engine = InjectorEngine(context.net, lus=context.lus,
                                txn_manager=(context.txn_managers[0]
                                             if context.txn_managers else None),
                                seed=plan.seed,
                                load_engine=context.load_engine)
        engine.apply(plan)
        return engine

    def _judge(self, context: ScenarioContext, plan: ChaosPlan,
               engine: InjectorEngine, counts: dict,
               invariants: Optional[list]) -> dict:
        """Judge a finished run: final health tick, invariants, verdict."""
        env = context.env
        if context.health is not None:
            # Make sure the horizon state got judged — but never evaluate
            # the same timestamp twice (the at-risk hysteresis counts
            # evaluations, so a double tick manufactures DEGRADED).
            last = context.health.model._last
            if last is None or last["t"] != env.now:
                context.health.tick(env.now)
        record = RunRecord(
            env=env, net=context.net, plan=plan, health=context.health,
            tracer=context.tracer, txn_managers=context.txn_managers,
            spaces=context.spaces, issued=counts["issued"],
            completed=counts["completed"], failed=counts["failed"],
            inflight=counts["inflight"],
            health_interval=(context.health.interval
                             if context.health is not None else 1.0))
        if context.load_engine is not None:
            record.extra["load"] = context.load_engine.summary()
        invariants = (invariants if invariants is not None
                      else self._invariants)
        if invariants is None:
            invariants = builtin_invariants(
                convergence_windows=self.config.convergence_windows)
        results = evaluate_invariants(record, invariants)
        transitions = (context.health.model.transitions
                       if context.health is not None else [])
        verdict = {
            "seed": plan.seed,
            "scenario": self.scenario,
            "ok": all(result.ok for result in results),
            "plan": plan.to_dict(),
            "invariants": [result.to_dict() for result in results],
            "workload": {key: counts[key] for key in sorted(counts)},
            "faults": {"applied": {kind: engine.applied[kind]
                                   for kind in sorted(engine.applied)},
                       "links": engine.link_stats()},
            "recovery": mttr_from_transitions(transitions),
        }
        if context.load_engine is not None:
            # Load scenarios ship their traffic accounting in the verdict
            # (scenarios without an engine keep the stock byte shape).
            verdict["load"] = record.extra["load"]
        return verdict

    def warm_session(self, plan: ChaosPlan,
                     margin: float = 1.0) -> "WarmSession":
        """A warm-restore probe session for shrinking ``plan``.

        Builds the scenario once, settles, starts the steady workload
        and advances to just before the plan's earliest fault. Each
        subsequent :meth:`WarmSession.run_plan` forks the process and
        runs only the candidate's fault suffix in the child — ddmin only
        ever *removes* events, so every candidate's earliest start is at
        or after the full plan's and the shared prefix stays valid.

        Requires ``os.fork`` (POSIX); callers gate on
        :func:`WarmSession.supported`.
        """
        return WarmSession(self, plan, margin=margin)

    def run(self, seeds) -> dict:
        """Run every seed; returns the campaign summary (JSON-ready)."""
        runs = [self.run_seed(seed) for seed in seeds]
        passed = sum(1 for run in runs if run["ok"])
        mttrs = [run["recovery"]["mttr"] for run in runs
                 if run["recovery"]["mttr"] is not None]
        failures: dict = {}
        for run in runs:
            for result in run["invariants"]:
                if not result["ok"]:
                    failures[result["name"]] = failures.get(result["name"], 0) + 1
        return {
            "scenario": self.scenario,
            "seeds": list(seeds),
            "passed": passed,
            "failed": len(runs) - passed,
            "pass_rate": round(passed / len(runs), 4) if runs else None,
            "mean_mttr": (round(sum(mttrs) / len(mttrs), 3)
                          if mttrs else None),
            "invariant_failures": failures,
            "runs": runs,
        }

    # -- workload ---------------------------------------------------------------

    def _workload(self, context: ScenarioContext, counts: dict,
                  stop_at: float):
        env = context.env
        if context.prepare is not None:
            try:
                yield from context.prepare()
            except Interrupt:
                raise
            except Exception:
                pass  # chaos may already be biting; elementary reads remain
        index = 0
        while env.now < stop_at:
            target = context.targets[index % len(context.targets)]
            index += 1
            env.process(self._request(context, target, counts),
                        name=f"chaos-request:{target}")
            yield env.timeout(self.config.workload_period)

    def _request(self, context: ScenarioContext, target: str, counts: dict):
        counts["issued"] += 1
        counts["inflight"] += 1
        try:
            yield from context.request(target)
        except Interrupt:
            counts["inflight"] -= 1
            raise
        except Exception:
            counts["failed"] += 1
            counts["inflight"] -= 1
            return
        counts["completed"] += 1
        counts["inflight"] -= 1


class WarmSession:
    """Fork-based warm-restore probes over one settled scenario prefix.

    The expensive part of every shrink probe is identical: build the
    federation, settle discovery/join, run the steady workload up to the
    first fault. A warm session pays that once, then answers each "does
    this fault subset still fail?" probe by forking — the child inherits
    the settled simulation by copy-on-write, injects only the candidate
    faults, runs to the horizon and ships the verdict back over a pipe.

    Caveat honestly owned by the caller (:mod:`repro.chaos.shrink`):
    fault processes are created at the fork point rather than at settle
    time, so a warm probe's event interleaving is *not* guaranteed
    byte-identical to a cold run of the same candidate. Shrinking
    therefore re-validates its warm minimum with a cold probe and falls
    back to cold shrinking if the minimum does not reproduce.
    """

    def __init__(self, runner: CampaignRunner, plan: ChaosPlan,
                 margin: float = 1.0):
        if not self.supported():
            raise RuntimeError("warm sessions require os.fork (POSIX)")
        if not plan.events:
            raise ValueError("cannot warm-start an empty plan")
        self.runner = runner
        self.plan = plan
        config = runner.config
        self.context = runner._factory(config)
        env = self.context.env
        env.run(until=env.now + config.settle)
        self.counts = {"issued": 0, "completed": 0, "failed": 0,
                       "inflight": 0}
        env.process(runner._workload(
            self.context, self.counts,
            stop_at=plan.horizon - config.stop_margin),
            name="chaos-workload")
        if self.context.load_engine is not None:
            env.process(self.context.load_engine.run(), name="load-engine")
        first_fault = min(event.start for event in plan.events)
        #: Where the shared prefix stops: strictly before any fault can
        #: fire, but after as much settle/workload as possible.
        self.fork_at = max(env.now, first_fault - margin)
        env.run(until=self.fork_at)
        self.probes = 0

    @staticmethod
    def supported() -> bool:
        return hasattr(os, "fork")

    def run_plan(self, candidate: ChaosPlan,
                 invariants: Optional[list] = None) -> dict:
        """Probe one candidate subset; returns its verdict dict."""
        if candidate.events:
            earliest = min(event.start for event in candidate.events)
            if earliest < self.fork_at:
                raise ValueError(
                    f"candidate fault at t={earliest} predates the warm "
                    f"prefix (forked at t={self.fork_at})")
        self.probes += 1
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: the settled federation is ours by copy-on-write.
            status = 1
            try:
                os.close(read_fd)
                verdict = self._probe(candidate, invariants)
                payload = json.dumps(verdict, sort_keys=True,
                                     separators=(",", ":")).encode("utf-8")
                with os.fdopen(write_fd, "wb") as pipe:
                    pipe.write(payload)
                status = 0
            finally:
                # Never fall through to the parent's stack/atexit state.
                os._exit(status)
        os.close(write_fd)
        chunks = []
        with os.fdopen(read_fd, "rb") as pipe:
            # Drain to EOF *before* waitpid: a verdict larger than the
            # pipe buffer would otherwise deadlock parent and child.
            chunks.append(pipe.read())
        _, exit_status = os.waitpid(pid, 0)
        if os.waitstatus_to_exitcode(exit_status) != 0:
            raise RuntimeError(
                f"warm probe for seed {candidate.seed} died "
                f"(status {exit_status})")
        return json.loads(b"".join(chunks))

    def _probe(self, candidate: ChaosPlan,
               invariants: Optional[list]) -> dict:
        runner, context = self.runner, self.context
        engine = runner._launch_faults(context, candidate)
        context.env.run(until=candidate.horizon)
        return runner._judge(context, candidate, engine, self.counts,
                             invariants)


def verdict_json(verdict: dict) -> str:
    """Canonical byte-stable JSON for one run verdict."""
    return json.dumps(verdict, sort_keys=True, separators=(",", ":")) + "\n"


def campaign_json(summary: dict) -> str:
    """Canonical byte-stable JSON for a whole campaign."""
    return json.dumps(summary, sort_keys=True, separators=(",", ":")) + "\n"
