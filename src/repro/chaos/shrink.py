"""Failure-schedule shrinking — delta debugging over chaos plans.

When a campaign finds a violating plan, the interesting artifact is not
the five-event schedule that tripped it but the *smallest* schedule that
still does. :func:`shrink_plan` runs classic ddmin over the event list
(drop chunks, keep the complement if it still fails), then an attribute
pass (halve durations and fault parameters, zero rates) — every trial is
a full deterministic re-run, so "still fails" is exact, not
probabilistic. The minimal plan serializes to JSON and replays forever:
``repro chaos replay --plan minimal.json`` reproduces the verdict
bit-for-bit, which is what makes it a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .plan import ChaosPlan, FaultEvent

__all__ = ["ShrinkResult", "shrink_plan", "shrink_failing_seed"]


@dataclass
class ShrinkResult:
    plan: ChaosPlan           # the minimal still-failing plan
    runs: int                 # predicate evaluations spent
    removed_events: int       # events dropped from the original
    exhausted: bool           # True if the run budget cut shrinking short
    #: How the probes ran: "cold" (full re-run each), "warm" (forked from
    #: a shared settled prefix, minimum cold-validated) or
    #: "warm-fallback" (warm minimum failed cold validation; the result
    #: is from a cold re-shrink).
    mode: str = "cold"


class _Budget:
    def __init__(self, max_runs: int):
        self.max_runs = max_runs
        self.runs = 0
        self.exhausted = False
        self._cache: dict = {}

    def fails(self, plan: ChaosPlan, predicate) -> bool:
        key = plan.to_json()
        if key in self._cache:
            return self._cache[key]
        if self.runs >= self.max_runs:
            self.exhausted = True
            return False  # out of budget: treat as "passes", keep current
        self.runs += 1
        result = bool(predicate(plan))
        self._cache[key] = result
        return result


def _ddmin(plan: ChaosPlan, predicate, budget: _Budget) -> ChaosPlan:
    events = list(plan.events)
    n = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // n)
        reduced = False
        for i in range(n):
            lo = i * chunk
            hi = len(events) if i == n - 1 else min(len(events), lo + chunk)
            if lo >= hi:
                continue
            complement = events[:lo] + events[hi:]
            if not complement:
                continue
            if budget.fails(plan.replace(complement), predicate):
                events = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(events) or budget.exhausted:
                break
            n = min(len(events), n * 2)
    return plan.replace(events)


def _attribute_candidates(event: FaultEvent):
    """Smaller variants of one event, most aggressive first."""
    if event.duration > 1.0:
        yield FaultEvent(event.kind, event.target, event.start,
                         round(max(1.0, event.duration / 2), 3), event.params)
    for key in sorted(event.params):
        value = event.params[key]
        if isinstance(value, float) and value > 0.01:
            zeroed = dict(event.params)
            zeroed[key] = 0.0
            yield FaultEvent(event.kind, event.target, event.start,
                             event.duration, zeroed)
            smaller = dict(event.params)
            smaller[key] = round(value / 2, 3)
            yield FaultEvent(event.kind, event.target, event.start,
                             event.duration, smaller)


def _shrink_attributes(plan: ChaosPlan, predicate, budget: _Budget) -> ChaosPlan:
    # Fixed-point loop: every accepted candidate strictly halves a duration
    # (floored at 1.0) or halves/zeroes a parameter, so this terminates
    # without an artificial round cap; the run budget bounds it anyway.
    events = list(plan.events)
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for index in range(len(events)):
            for candidate in _attribute_candidates(events[index]):
                trial = events[:index] + [candidate] + events[index + 1:]
                if budget.fails(plan.replace(trial), predicate):
                    events = trial
                    changed = True
                    break
    return plan.replace(events)


def shrink_plan(plan: ChaosPlan, predicate: Callable,
                max_runs: int = 200) -> ShrinkResult:
    """Minimize ``plan`` while ``predicate(plan)`` stays True.

    ``predicate`` must be deterministic (it re-runs the campaign). The
    original plan is assumed failing; it is returned unshrunk if no
    smaller variant still fails within the run budget.
    """
    budget = _Budget(max_runs)
    shrunk = _ddmin(plan, predicate, budget)
    shrunk = _shrink_attributes(shrunk, predicate, budget)
    return ShrinkResult(plan=shrunk, runs=budget.runs,
                        removed_events=len(plan.events) - len(shrunk.events),
                        exhausted=budget.exhausted)


def _matches_failure(trial: dict, failed_names: set) -> bool:
    return any(not result["ok"] and result["name"] in failed_names
               for result in trial["invariants"])


def shrink_failing_seed(runner, seed: int, max_runs: int = 60,
                        warm: bool = False) -> tuple:
    """Run ``seed`` under ``runner``; if it fails, shrink its plan.

    Returns ``(ShrinkResult | None, original_verdict)`` — ``None`` when
    the seed passes and there is nothing to shrink. The shrink predicate
    demands the *same* invariant(s) keep failing, so the minimal plan
    reproduces the original violation class, not just any failure.

    ``warm=True`` answers each probe by forking from one shared settled
    prefix (:meth:`~repro.chaos.campaign.CampaignRunner.warm_session`)
    instead of rebuilding the federation per probe. Warm probes can
    interleave slightly differently from cold runs (fault processes are
    created at the fork point), so the warm minimum is re-validated with
    a cold run; if it does not reproduce, shrinking silently falls back
    to cold probes. On platforms without ``os.fork`` warm mode is a
    no-op.
    """
    verdict = runner.run_seed(seed)
    if verdict["ok"]:
        return None, verdict
    failed_names = {result["name"] for result in verdict["invariants"]
                    if not result["ok"]}
    plan = ChaosPlan.from_dict(verdict["plan"])

    def cold_fails(candidate: ChaosPlan) -> bool:
        return _matches_failure(runner.run_plan(candidate), failed_names)

    from .campaign import WarmSession
    if warm and plan.events and WarmSession.supported():
        session = runner.warm_session(plan)

        def warm_fails(candidate: ChaosPlan) -> bool:
            return _matches_failure(session.run_plan(candidate),
                                    failed_names)

        result = shrink_plan(plan, warm_fails, max_runs=max_runs)
        if cold_fails(result.plan):
            result.runs += 1  # the cold validation run
            result.mode = "warm"
            return result, verdict
        result = shrink_plan(plan, cold_fails, max_runs=max_runs)
        result.mode = "warm-fallback"
        return result, verdict

    return shrink_plan(plan, cold_fails, max_runs=max_runs), verdict
