"""Cybernode selection policies — where to place the next service instance.

The provision monitor asks a policy to pick among QoS-eligible candidates.
Policies are the ablation axis of experiment E-PROV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Candidate", "SelectionPolicy", "RoundRobin", "LeastLoaded",
           "CapacityWeightedRandom", "RandomChoice"]


@dataclass
class Candidate:
    """A QoS-eligible cybernode snapshot."""

    ref: object                 # RemoteRef of the cybernode
    node_id: str
    compute_slots: float
    used_slots: float

    @property
    def free_slots(self) -> float:
        return self.compute_slots - self.used_slots

    @property
    def utilization(self) -> float:
        return self.used_slots / self.compute_slots if self.compute_slots else 1.0


class SelectionPolicy:
    name = "abstract"

    def choose(self, candidates: list) -> Optional[Candidate]:  # pragma: no cover
        raise NotImplementedError


class RoundRobin(SelectionPolicy):
    """Cycle through nodes in stable (node_id) order."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, candidates: list) -> Optional[Candidate]:
        if not candidates:
            return None
        ordered = sorted(candidates, key=lambda c: c.node_id)
        pick = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return pick


class LeastLoaded(SelectionPolicy):
    """Pick the node with the lowest utilization (ties by node_id)."""

    name = "least-loaded"

    def choose(self, candidates: list) -> Optional[Candidate]:
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.utilization, c.node_id))


class CapacityWeightedRandom(SelectionPolicy):
    """Random, weighted by free capacity — spreads load while favouring
    big nodes."""

    name = "capacity-weighted"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def choose(self, candidates: list) -> Optional[Candidate]:
        if not candidates:
            return None
        ordered = sorted(candidates, key=lambda c: c.node_id)
        weights = np.array([max(c.free_slots, 0.0) for c in ordered])
        total = weights.sum()
        if total <= 0:
            return ordered[0]
        index = int(self.rng.choice(len(ordered), p=weights / total))
        return ordered[index]


class RandomChoice(SelectionPolicy):
    """Uniform random — the baseline policy for E-PROV."""

    name = "random"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def choose(self, candidates: list) -> Optional[Candidate]:
        if not candidates:
            return None
        ordered = sorted(candidates, key=lambda c: c.node_id)
        return ordered[int(self.rng.integers(len(ordered)))]
