"""Rio-semantics provisioning substrate (§IV.C of the paper).

Cybernodes advertise compute capability; a provision monitor keeps each
deployed operational string converged to its planned service counts,
placing instances by QoS + selection policy and healing failures as
registration leases lapse.
"""

from .cybernode import CapacityExceededError, Cybernode, NodeStatus
from .monitor import ProvisionMonitor, ProvisionRecord
from .opstring import Deployment, OperationalString, ServiceElement
from .qos import QosCapability, QosRequirement
from .selection import (
    Candidate,
    CapacityWeightedRandom,
    LeastLoaded,
    RandomChoice,
    RoundRobin,
    SelectionPolicy,
)
from .sla import SlaScaler

__all__ = [
    "CapacityExceededError",
    "Candidate",
    "CapacityWeightedRandom",
    "Cybernode",
    "Deployment",
    "LeastLoaded",
    "NodeStatus",
    "OperationalString",
    "ProvisionMonitor",
    "ProvisionRecord",
    "QosCapability",
    "QosRequirement",
    "RandomChoice",
    "RoundRobin",
    "SelectionPolicy",
    "ServiceElement",
    "SlaScaler",
]
