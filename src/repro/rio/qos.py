"""QoS capabilities and requirements (Rio's compute-resource matching).

A cybernode advertises a :class:`QosCapability` (slots, memory, platform
tags); a service element declares a :class:`QosRequirement`. Provisioning
only places a service on a cybernode whose capability satisfies the
requirement with enough head-room — the paper's "running sensor service on
the compute resource available in the network that matches required QoS".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QosCapability", "QosRequirement"]


@dataclass(frozen=True)
class QosCapability:
    """What a cybernode offers."""

    #: Abstract compute slots (1 slot ~ one service of unit load).
    compute_slots: float = 4.0
    memory_mb: float = 1024.0
    #: Platform/feature tags ("jvm", "sensor-gateway", "arm", ...).
    tags: frozenset = frozenset()

    def __post_init__(self):
        if self.compute_slots <= 0 or self.memory_mb <= 0:
            raise ValueError("capability dimensions must be positive")


@dataclass(frozen=True)
class QosRequirement:
    """What a service element needs."""

    #: Slots this service consumes while deployed.
    load: float = 1.0
    memory_mb: float = 64.0
    required_tags: frozenset = frozenset()

    def __post_init__(self):
        if self.load < 0 or self.memory_mb < 0:
            raise ValueError("requirement dimensions must be non-negative")

    def satisfied_by(self, capability: QosCapability,
                     used_slots: float = 0.0,
                     used_memory_mb: float = 0.0) -> bool:
        """Can a node with this capability and current usage host us?"""
        if capability.compute_slots - used_slots < self.load:
            return False
        if capability.memory_mb - used_memory_mb < self.memory_mb:
            return False
        if not self.required_tags <= capability.tags:
            return False
        return True

    def satisfied_by_status(self, status) -> bool:
        """Same check against a cybernode's :class:`NodeStatus` snapshot."""
        if status.compute_slots - status.used_slots < self.load:
            return False
        if status.memory_mb - status.used_memory_mb < self.memory_mb:
            return False
        if not self.required_tags <= frozenset(status.tags):
            return False
        return True
