"""Cybernode — Rio's compute resource agent.

A cybernode lives on a host, advertises a :class:`QosCapability`, and
instantiates service beans on request from the provision monitor. Services
it hosts run on *its* host: when the cybernode's machine dies, every hosted
service dies with it (and their registration leases lapse) — which is
exactly the failure the monitor then repairs elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..jini.entries import Name
from ..jini.join import JoinManager
from ..jini.template import ServiceItem
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from .opstring import Deployment, ServiceElement
from .qos import QosCapability, QosRequirement

__all__ = ["Cybernode", "CapacityExceededError", "NodeStatus"]


class CapacityExceededError(Exception):
    """Instantiation refused: not enough free capacity or per-node limit."""


@dataclass
class NodeStatus:
    node_id: str
    compute_slots: float
    used_slots: float
    memory_mb: float
    used_memory_mb: float
    hosted: int
    tags: tuple = ()


class Cybernode:
    """Compute-resource service; registers with the LUS as type 'Cybernode'."""

    REMOTE_TYPES = ("Cybernode",)
    REMOTE_METHODS = ("status", "instantiate", "release", "hosted_services",
                      "ping")

    def __init__(self, host: Host, name: str = "Cybernode",
                 capability: Optional[QosCapability] = None,
                 lease_duration: float = 10.0):
        self.host = host
        self.env = host.env
        self.name = name
        self.capability = capability if capability is not None else QosCapability()
        self.node_id = host.network.ids.uuid()
        self.used_slots = 0.0
        self.used_memory_mb = 0.0
        #: service_id -> (element name, provider, load, memory)
        self._hosted: dict[str, tuple] = {}
        self._per_element: dict[str, int] = {}
        self._endpoint = rpc_endpoint(host)
        self.ref = self._endpoint.export(self, f"cybernode:{self.node_id}",
                                         methods=self.REMOTE_METHODS)
        self._join: Optional[JoinManager] = None
        self._lease_duration = lease_duration
        host.on_fail(self._on_host_fail)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Cybernode":
        if self._join is None:
            item = ServiceItem(service_id=self.node_id, service=self.ref,
                               attributes=(Name(self.name),))
            self._join = JoinManager(self.host, item,
                                     lease_duration=self._lease_duration)
            self._join.start()
        return self

    def _on_host_fail(self, host: Host) -> None:
        # The JVM died: hosted service beans are gone. Their registration
        # leases lapse on their own; we only reset local bookkeeping so a
        # recovered node starts empty.
        self._hosted.clear()
        self._per_element.clear()
        self.used_slots = 0.0
        self.used_memory_mb = 0.0

    # -- remote API -------------------------------------------------------------

    def ping(self) -> bool:
        return True

    def status(self) -> NodeStatus:
        return NodeStatus(
            node_id=self.node_id,
            compute_slots=self.capability.compute_slots,
            used_slots=self.used_slots,
            memory_mb=self.capability.memory_mb,
            used_memory_mb=self.used_memory_mb,
            hosted=len(self._hosted),
            tags=tuple(sorted(self.capability.tags)))

    def hosted_services(self) -> list[str]:
        return sorted(self._hosted.keys())

    def instantiate(self, element: ServiceElement, instance_name: str,
                    opstring_name: str):
        """Create a service bean for ``element``; returns its service id.

        A generator (run as a process by the RPC layer): instantiation has a
        small fixed cost, like a JVM class-loading/deploy step.
        """
        requirement: QosRequirement = element.qos
        if not requirement.satisfied_by(self.capability, self.used_slots,
                                        self.used_memory_mb):
            raise CapacityExceededError(
                f"{self.name}: cannot host {element.name!r} "
                f"(used {self.used_slots}/{self.capability.compute_slots} slots)")
        if self._per_element.get(element.name, 0) >= element.max_per_node:
            raise CapacityExceededError(
                f"{self.name}: max_per_node={element.max_per_node} reached "
                f"for {element.name!r}")
        yield self.env.timeout(0.05)  # deployment cost
        deployment = Deployment(opstring=opstring_name, element=element.name)
        provider = element.factory(self.host, instance_name, (deployment,))
        provider.start()
        self._hosted[provider.service_id] = (
            element.name, provider, requirement.load, requirement.memory_mb)
        self._per_element[element.name] = self._per_element.get(element.name, 0) + 1
        self.used_slots += requirement.load
        self.used_memory_mb += requirement.memory_mb
        return provider.service_id

    def release(self, service_id: str):
        """Destroy a hosted service bean (generator)."""
        entry = self._hosted.pop(service_id, None)
        if entry is None:
            raise KeyError(f"{self.name} does not host {service_id!r}")
        element_name, provider, load, memory = entry
        self._per_element[element_name] -= 1
        self.used_slots -= load
        self.used_memory_mb -= memory
        yield self.env.process(provider.destroy())
        return True
