"""Provision monitor — Rio's autonomic deployment controller.

One control loop per monitor: for every deployed operational string and
element, count the live instances visible through the lookup services
(liveness == an unexpired registration lease), and converge the network
toward the planned count — instantiating on the best QoS-eligible cybernode
(per the selection policy) when short, releasing extras when over. A
cybernode crash therefore heals automatically: the dead instances' leases
lapse, the count drops below plan, and the monitor re-provisions on a
surviving node — the paper's "fault tolerance achieved by dynamically
allocating the service to a different compute node" (§IV.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..jini.entries import Name
from ..jini.join import JoinManager
from ..jini.template import ServiceItem, ServiceTemplate
from ..net.errors import NetworkError, RemoteError
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability import metrics_registry, tracer_of
from ..sim import Interrupt
from ..sorcer.accessor import ServiceAccessor
from .opstring import Deployment, OperationalString, ServiceElement
from .selection import Candidate, LeastLoaded, SelectionPolicy

__all__ = ["ProvisionMonitor", "ProvisionRecord"]

CYBERNODE_TYPE = "Cybernode"


@dataclass
class ProvisionRecord:
    service_id: str
    opstring: str
    element: str
    instance_name: str
    cybernode: RemoteRef
    provisioned_at: float


class ProvisionMonitor:
    """The Rio 'Monitor' service of the paper's Fig 2 inventory."""

    REMOTE_TYPES = ("ProvisionMonitor",)
    REMOTE_METHODS = ("deploy", "undeploy", "set_planned", "deployment_status")

    def __init__(self, host: Host, name: str = "Monitor",
                 policy: Optional[SelectionPolicy] = None,
                 poll_interval: float = 1.0,
                 lease_duration: float = 10.0):
        self.host = host
        self.env = host.env
        self.name = name
        self.policy = policy if policy is not None else LeastLoaded()
        self.poll_interval = poll_interval
        self.monitor_id = host.network.ids.uuid()
        self.accessor = ServiceAccessor(host)
        self._endpoint = rpc_endpoint(host)
        self._opstrings: dict[str, OperationalString] = {}
        self._records: dict[str, ProvisionRecord] = {}
        self.ref = self._endpoint.export(self, f"monitor:{self.monitor_id}",
                                         methods=self.REMOTE_METHODS)
        self._join: Optional[JoinManager] = None
        self._lease_duration = lease_duration
        self._started = False
        self.stats = {"provisioned": 0, "released": 0, "provision_failures": 0}
        self.tracer = tracer_of(host.network)
        registry = metrics_registry(host.network)
        self._m_provisioned = registry.counter("monitor.provisioned",
                                               monitor=name)
        self._m_released = registry.counter("monitor.released", monitor=name)
        self._m_failures = registry.counter("monitor.provision_failures",
                                            monitor=name)
        #: Instances currently under management (the deployment's true size).
        self._m_managed = registry.gauge("monitor.managed", monitor=name)
        #: Planned instances the monitor could not provision — a persistent
        #: non-zero value means the federation is short on capacity (the
        #: health model degrades the federation on it).
        self._m_shortfall = registry.gauge("monitor.shortfall", monitor=name)
        self._shortfalls: dict[tuple, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ProvisionMonitor":
        if not self._started:
            self._started = True
            item = ServiceItem(service_id=self.monitor_id, service=self.ref,
                               attributes=(Name(self.name),))
            self._join = JoinManager(self.host, item,
                                     lease_duration=self._lease_duration)
            self._join.start()
            self.env.process(self._control_loop(), name=f"monitor:{self.name}")
        return self

    # -- remote API -------------------------------------------------------------

    def deploy(self, opstring: OperationalString) -> str:
        if opstring.name in self._opstrings:
            raise ValueError(f"opstring {opstring.name!r} already deployed")
        self._opstrings[opstring.name] = opstring
        return opstring.name

    def undeploy(self, opstring_name: str) -> None:
        opstring = self._opstrings.pop(opstring_name, None)
        if opstring is None:
            raise KeyError(f"opstring {opstring_name!r} is not deployed")
        for key in [k for k in self._shortfalls if k[0] == opstring_name]:
            del self._shortfalls[key]
        self._m_shortfall.set(sum(self._shortfalls.values()))
        # Release everything we provisioned for it (async).
        for record in [r for r in self._records.values()
                       if r.opstring == opstring_name]:
            self.env.process(self._release(record), name="monitor-undeploy")

    def set_planned(self, opstring_name: str, element_name: str,
                    planned: int) -> None:
        if planned < 0:
            raise ValueError("planned must be >= 0")
        self._opstrings[opstring_name].element(element_name).planned = planned

    def deployment_status(self) -> dict:
        return {
            name: {el.name: {"planned": el.planned} for el in opstring.elements}
            for name, opstring in self._opstrings.items()
        }

    # -- control loop ----------------------------------------------------------------

    def _control_loop(self):
        while True:
            if self.host.up:
                for opstring in list(self._opstrings.values()):
                    for element in list(opstring.elements):
                        try:
                            yield from self._converge(opstring, element)
                        except Interrupt:
                            raise
                        except Exception:
                            # Control must survive transient weirdness.
                            self._converge_failed()
            yield self.env.timeout(self.poll_interval)

    def _element_template(self, opstring: OperationalString,
                          element: ServiceElement) -> ServiceTemplate:
        return ServiceTemplate(attributes=(
            Deployment(opstring=opstring.name, element=element.name),))

    def _converge(self, opstring: OperationalString, element: ServiceElement):
        live = yield from self.accessor.find_items(
            self._element_template(opstring, element), max_matches=64)
        live_ids = {item.service_id for item in live}
        # Prune stale records for instances that are gone.
        for service_id in [sid for sid, rec in self._records.items()
                           if rec.opstring == opstring.name
                           and rec.element == element.name
                           and sid not in live_ids]:
            del self._records[service_id]
        provisioned = 0
        if len(live) < element.planned:
            for _ in range(element.planned - len(live)):
                ok = yield from self._provision(opstring, element)
                if not ok:
                    break
                provisioned += 1
        elif len(live) > element.planned:
            extras = [self._records[sid] for sid in sorted(live_ids)
                      if sid in self._records][element.planned - len(live):]
            for record in extras:
                yield from self._release(record)
        shortfall = max(0, element.planned - len(live) - provisioned)
        self._shortfalls[(opstring.name, element.name)] = shortfall
        self._m_shortfall.set(sum(self._shortfalls.values()))

    def _next_instance_name(self, element: ServiceElement) -> str:
        """Smallest free instance name: a replacement for a dead single
        instance reuses its name (the network sees the same service come
        back, as Rio users expect)."""
        used = {record.instance_name for record in self._records.values()
                if record.element == element.name}
        index = 0
        while element.instance_name(index) in used:
            index += 1
        return element.instance_name(index)

    def _provision(self, opstring: OperationalString, element: ServiceElement):
        # Roots its own trace: the control loop has no requestor above it.
        span = self.tracer.start_span(
            f"provision:{element.name}", kind="provision", host=self.host.name,
            opstring=opstring.name)
        try:
            candidates = yield from self._eligible_cybernodes(element)
            while candidates:
                choice = self.policy.choose(candidates)
                if choice is None:
                    break
                instance_name = self._next_instance_name(element)
                try:
                    service_id = yield self._endpoint.call(
                        choice.ref, "instantiate", element, instance_name,
                        opstring.name, kind="rio-instantiate", timeout=10.0,
                        trace_parent=span.span_id)
                except (RemoteError, NetworkError):
                    span.annotate("cybernode_failed", node=choice.node_id)
                    candidates = [c for c in candidates if c is not choice]
                    continue
                self._records[service_id] = ProvisionRecord(
                    service_id=service_id, opstring=opstring.name,
                    element=element.name, instance_name=instance_name,
                    cybernode=choice.ref, provisioned_at=self.env.now)
                self.stats["provisioned"] += 1
                self._m_provisioned.inc()
                self._m_managed.set(len(self._records))
                span.set_attribute("instance", instance_name)
                span.end("ok")
                return True
            self.stats["provision_failures"] += 1
            self._m_failures.inc()
            span.end("failed")
            return False
        except BaseException:
            # An Interrupt (converge loop cancelled) or an unmodelled
            # failure must not leave the provision span open forever.
            span.end("error")
            raise

    def _converge_failed(self) -> None:
        self.stats["provision_failures"] += 1
        self._m_failures.inc()

    def _release(self, record: ProvisionRecord):
        try:
            yield self._endpoint.call(record.cybernode, "release",
                                      record.service_id, kind="rio-release",
                                      timeout=10.0)
        except (RemoteError, NetworkError):
            pass
        self._records.pop(record.service_id, None)
        self.stats["released"] += 1
        self._m_released.inc()
        self._m_managed.set(len(self._records))

    def _eligible_cybernodes(self, element: ServiceElement):
        items = yield from self.accessor.find_items(
            ServiceTemplate.by_type(CYBERNODE_TYPE), max_matches=64)
        candidates: list[Candidate] = []
        for item in items:
            try:
                status = yield self._endpoint.call(item.service, "status",
                                                   kind="rio-status", timeout=3.0)
            except (RemoteError, NetworkError):
                continue
            if element.qos.satisfied_by_status(status):
                candidates.append(Candidate(
                    ref=item.service, node_id=status.node_id,
                    compute_slots=status.compute_slots,
                    used_slots=status.used_slots))
        return candidates
