"""SLA-driven autoscaling — a Rio extension the paper's provisioning enables.

An :class:`SlaScaler` watches a load signal for one service element and
adjusts the element's planned count on the monitor: scale out above the
high-water mark, scale in below the low-water mark, bounded by
``[min_planned, max_planned]``. Used by the E-PROV ablation.

The load signal is normally a metric-key prefix into the run's shared
:class:`~repro.observability.MetricsRegistry` — the same instruments the
health plane rolls up — summed across matching series (one per provisioned
instance):

* ``metric_kind="gauge"`` — current summed gauge value (e.g. total
  ``provider.inflight{provider=...}`` queue depth);
* ``metric_kind="rate"`` — summed counter increase since the previous
  check, per second (e.g. ``provider.served`` throughput).

A plain callable is still accepted wherever a metric key goes (tests and
ad-hoc experiments inject synthetic load that way).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability.registry import Counter, Gauge, metrics_registry
from ..sim import Interrupt

__all__ = ["SlaScaler"]

_METRIC_KINDS = ("gauge", "rate")


class SlaScaler:
    """Threshold-based scaler driving ``ProvisionMonitor.set_planned``."""

    def __init__(self, host: Host, monitor_ref: RemoteRef,
                 opstring_name: str, element_name: str,
                 load_metric: Union[str, Callable[[], float]],
                 high_water: float, low_water: float,
                 min_planned: int = 1, max_planned: int = 8,
                 check_interval: float = 2.0,
                 metric_kind: str = "gauge"):
        if low_water >= high_water:
            raise ValueError("low_water must be below high_water")
        if min_planned > max_planned:
            raise ValueError("min_planned must be <= max_planned")
        if metric_kind not in _METRIC_KINDS:
            raise ValueError(f"metric_kind must be one of {_METRIC_KINDS}")
        self.host = host
        self.env = host.env
        self.monitor_ref = monitor_ref
        self.opstring_name = opstring_name
        self.element_name = element_name
        self.load_metric = load_metric
        self.metric_kind = metric_kind
        self.high_water = high_water
        self.low_water = low_water
        self.min_planned = min_planned
        self.max_planned = max_planned
        self.check_interval = check_interval
        self.planned = min_planned
        self._endpoint = rpc_endpoint(host)
        self._registry = metrics_registry(host.network)
        #: Previous summed counter value, for the windowed rate.
        self._last_total: Optional[float] = None
        self._active = False
        self.history: list[tuple] = []

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self.env.process(self._loop(), name=f"sla:{self.element_name}")

    def stop(self) -> None:
        self._active = False

    # -- load signal ----------------------------------------------------------

    def _read_load(self) -> float:
        if callable(self.load_metric):
            return self.load_metric()
        total = 0.0
        for _key, metric in self._registry.items(self.load_metric):
            if self.metric_kind == "gauge" and isinstance(metric, Gauge):
                total += metric.value
            elif self.metric_kind == "rate" and isinstance(metric, Counter):
                total += metric.value
        if self.metric_kind == "gauge":
            return total
        previous, self._last_total = self._last_total, total
        if previous is None:
            return 0.0  # first observation: no window yet
        return max(0.0, total - previous) / self.check_interval

    # -- control loop ---------------------------------------------------------

    def _loop(self):
        while self._active:
            yield self.env.timeout(self.check_interval)
            if not self.host.up:
                continue
            load = self._read_load()
            target = self.planned
            if load > self.high_water and self.planned < self.max_planned:
                target = self.planned + 1
            elif load < self.low_water and self.planned > self.min_planned:
                target = self.planned - 1
            if target != self.planned:
                try:
                    yield self._endpoint.call(
                        self.monitor_ref, "set_planned", self.opstring_name,
                        self.element_name, target, kind="sla-scale")
                except Interrupt:
                    raise
                except Exception:
                    continue
                self.planned = target
                self.history.append((self.env.now, load, target))
