"""SLA-driven autoscaling — a Rio extension the paper's provisioning enables.

An :class:`SlaScaler` watches a load metric for one service element and
adjusts the element's planned count on the monitor: scale out above the
high-water mark, scale in below the low-water mark, bounded by
``[min_planned, max_planned]``. Used by the E-PROV ablation.
"""

from __future__ import annotations

from typing import Callable

from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint

__all__ = ["SlaScaler"]


class SlaScaler:
    """Threshold-based scaler driving ``ProvisionMonitor.set_planned``."""

    def __init__(self, host: Host, monitor_ref: RemoteRef,
                 opstring_name: str, element_name: str,
                 load_metric: Callable[[], float],
                 high_water: float, low_water: float,
                 min_planned: int = 1, max_planned: int = 8,
                 check_interval: float = 2.0):
        if low_water >= high_water:
            raise ValueError("low_water must be below high_water")
        if min_planned > max_planned:
            raise ValueError("min_planned must be <= max_planned")
        self.host = host
        self.env = host.env
        self.monitor_ref = monitor_ref
        self.opstring_name = opstring_name
        self.element_name = element_name
        self.load_metric = load_metric
        self.high_water = high_water
        self.low_water = low_water
        self.min_planned = min_planned
        self.max_planned = max_planned
        self.check_interval = check_interval
        self.planned = min_planned
        self._endpoint = rpc_endpoint(host)
        self._active = False
        self.history: list[tuple] = []

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self.env.process(self._loop(), name=f"sla:{self.element_name}")

    def stop(self) -> None:
        self._active = False

    def _loop(self):
        while self._active:
            yield self.env.timeout(self.check_interval)
            if not self.host.up:
                continue
            load = self.load_metric()
            target = self.planned
            if load > self.high_water and self.planned < self.max_planned:
                target = self.planned + 1
            elif load < self.low_water and self.planned > self.min_planned:
                target = self.planned - 1
            if target != self.planned:
                try:
                    yield self._endpoint.call(
                        self.monitor_ref, "set_planned", self.opstring_name,
                        self.element_name, target, kind="sla-scale")
                except Exception:
                    continue
                self.planned = target
                self.history.append((self.env.now, load, target))
