"""Operational strings — Rio's deployment descriptors.

An :class:`OperationalString` names a set of :class:`ServiceElement`s the
provision monitor must keep alive: each element says *what* to instantiate
(a factory), *how many* (planned), *where it may go* (QoS requirement,
max-per-node) and how it should be named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..jini.entries import Entry
from .qos import QosRequirement

__all__ = ["ServiceElement", "OperationalString", "Deployment"]


@dataclass(frozen=True)
class Deployment(Entry):
    """Attribute entry stamped on provisioned services so the monitor can
    count live instances of each element."""

    opstring: Optional[str] = None
    element: Optional[str] = None


#: A factory builds the provider on the cybernode's host:
#: ``factory(host, instance_name, attributes) -> ServiceProvider`` — the
#: provider must include ``attributes`` in its registration entries.
ServiceFactory = Callable


@dataclass
class ServiceElement:
    name: str
    factory: ServiceFactory
    planned: int = 1
    qos: QosRequirement = field(default_factory=QosRequirement)
    max_per_node: int = 1

    def __post_init__(self):
        if self.planned < 0:
            raise ValueError(f"planned must be >= 0, got {self.planned}")
        if self.max_per_node < 1:
            raise ValueError(f"max_per_node must be >= 1, got {self.max_per_node}")

    def instance_name(self, index: int) -> str:
        """Unique provider name per instance; single instances keep the
        element name itself (like 'New-Composite' in the paper)."""
        return self.name if self.planned <= 1 and index == 0 else f"{self.name}#{index}"


@dataclass
class OperationalString:
    name: str
    elements: list = field(default_factory=list)

    def element(self, name: str) -> ServiceElement:
        for el in self.elements:
            if el.name == name:
                return el
        raise KeyError(f"no element {name!r} in opstring {self.name!r}")

    def add(self, element: ServiceElement) -> "OperationalString":
        if any(el.name == element.name for el in self.elements):
            raise ValueError(f"duplicate element name {element.name!r}")
        self.elements.append(element)
        return self
