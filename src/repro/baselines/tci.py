"""The Jini TCI/SSP/ASP framework — related work A (§III.A).

Bertocco et al.'s three-level architecture, reimplemented as the comparison
baseline:

* **TCI** (Terminal Communication Interface) — virtualizes access to the
  sensors physically wired to it; the only component talking to sensors,
  and the only Jini-registered leaf;
* **SSP** (Sensor Service Provider) — contacts TCIs and arranges their data
  "in a more structured way";
* **ASP** (Application Service Provider) — the *only* point of access,
  offering a fixed menu of aggregate queries over a configuration frozen at
  construction time.

The limitations the paper calls out are faithfully present: clients cannot
pick sensors or computations (only the ASP's fixed operations over its
fixed sensor set), re-grouping sensors means deploying a *new* ASP, and
there is no provisioning."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..jini.entries import Name
from ..jini.template import ServiceTemplate
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..sensors.probe import ProbeError, SensorProbe
from ..sim import Interrupt
from ..sorcer.accessor import ServiceAccessor
from ..sorcer.provider import join_service

__all__ = ["TerminalCommunicationInterface", "TciSensorServiceProvider",
           "ApplicationServiceProvider"]

TCI_TYPE = "TCI"
SSP_TYPE = "TciSSP"
ASP_TYPE = "TciASP"


class TerminalCommunicationInterface:
    """Level 1: consistent access to the sensors wired to this terminal."""

    REMOTE_TYPES = (TCI_TYPE,)
    REMOTE_METHODS = ("read", "read_all", "sensor_keys")

    def __init__(self, host: Host, name: str, probes: dict):
        self.host = host
        self.env = host.env
        self.name = name
        self.probes: dict[str, SensorProbe] = dict(probes)
        for probe in self.probes.values():
            if not probe.connected:
                probe.connect()
        self._endpoint = rpc_endpoint(host)
        self.service_id = host.network.ids.uuid()
        self.ref = self._endpoint.export(self, f"tci:{self.service_id}",
                                         methods=self.REMOTE_METHODS)
        self._join = None

    def start(self) -> "TerminalCommunicationInterface":
        if self._join is None:
            self._join = join_service(self.host, self.ref, self.service_id,
                                      (Name(self.name),), lease_duration=10.0)
        return self

    # -- remote API -------------------------------------------------------------

    def sensor_keys(self) -> list[str]:
        return sorted(self.probes)

    def read(self, sensor_key: str):
        probe = self.probes.get(sensor_key)
        if probe is None:
            raise KeyError(f"{self.name} has no sensor {sensor_key!r}")
        reading = yield self.env.process(probe.read())
        return reading.value

    def read_all(self):
        out = {}
        for key in sorted(self.probes):
            try:
                out[key] = yield from self.read(key)
            except ProbeError:
                out[key] = None
        return out


class TciSensorServiceProvider:
    """Level 2: collects TCI data into a structured form."""

    REMOTE_TYPES = (SSP_TYPE,)
    REMOTE_METHODS = ("collect",)

    def __init__(self, host: Host, name: str = "SSP"):
        self.host = host
        self.env = host.env
        self.name = name
        self.accessor = ServiceAccessor(host)
        self._endpoint = rpc_endpoint(host)
        self.service_id = host.network.ids.uuid()
        self.ref = self._endpoint.export(self, f"ssp:{self.service_id}",
                                         methods=self.REMOTE_METHODS)
        self._join = None

    def start(self) -> "TciSensorServiceProvider":
        if self._join is None:
            self._join = join_service(self.host, self.ref, self.service_id,
                                      (Name(self.name),), lease_duration=10.0)
        return self

    def collect(self):
        """Structured snapshot: {tci name: {sensor: value}} (generator)."""
        tcis = yield from self.accessor.find_items(
            ServiceTemplate.by_type(TCI_TYPE), max_matches=64)
        structured = {}
        for item in sorted(tcis, key=lambda i: i.name() or ""):
            try:
                values = yield self._endpoint.call(item.service, "read_all",
                                                   kind="tci-read", timeout=5.0)
            except Interrupt:
                raise
            except Exception:
                continue
            structured[item.name()] = values
        return structured


class ApplicationServiceProvider:
    """Level 3: the single access point with fixed aggregate queries.

    The configuration (which sensors participate) is frozen at construction;
    changing it requires deploying a replacement ASP — the rigidity the
    paper contrasts with CSP runtime re-composition."""

    REMOTE_TYPES = (ASP_TYPE,)
    REMOTE_METHODS = ("query", "configuration")

    #: The fixed operation menu; no client-supplied expressions.
    OPERATIONS = ("mean", "min", "max", "count")

    def __init__(self, host: Host, name: str = "ASP",
                 include_sensors: Optional[list] = None):
        self.host = host
        self.env = host.env
        self.name = name
        #: None = all sensors; otherwise a frozen allowlist of sensor keys.
        self.include_sensors = (None if include_sensors is None
                                else frozenset(include_sensors))
        self.accessor = ServiceAccessor(host)
        self._endpoint = rpc_endpoint(host)
        self.service_id = host.network.ids.uuid()
        self.ref = self._endpoint.export(self, f"asp:{self.service_id}",
                                         methods=self.REMOTE_METHODS)
        self._join = None

    def start(self) -> "ApplicationServiceProvider":
        if self._join is None:
            self._join = join_service(self.host, self.ref, self.service_id,
                                      (Name(self.name),), lease_duration=10.0)
        return self

    def destroy(self):
        """Tear down (generator) — needed before deploying a replacement."""
        if self._join is not None:
            yield from self._join.terminate()
            self._join = None
        self._endpoint.unexport(f"asp:{self.service_id}")

    def configuration(self) -> dict:
        return {"operations": list(self.OPERATIONS),
                "include_sensors": (sorted(self.include_sensors)
                                    if self.include_sensors is not None else None)}

    def query(self, operation: str = "mean"):
        """Aggregate over the frozen sensor set (generator)."""
        if operation not in self.OPERATIONS:
            raise ValueError(
                f"ASP offers only {self.OPERATIONS}; no custom computations")
        ssps = yield from self.accessor.find_items(
            ServiceTemplate.by_type(SSP_TYPE), max_matches=16)
        if not ssps:
            raise LookupError("no SSP on the network")
        values: list[float] = []
        for item in ssps:
            structured = yield self._endpoint.call(item.service, "collect",
                                                   kind="ssp-collect",
                                                   timeout=15.0)
            for tci_values in structured.values():
                for key, value in tci_values.items():
                    if value is None:
                        continue
                    if (self.include_sensors is not None
                            and key not in self.include_sensors):
                        continue
                    values.append(value)
        if not values:
            raise RuntimeError("no sensor data collected")
        if operation == "mean":
            return float(np.mean(values))
        if operation == "min":
            return float(np.min(values))
        if operation == "max":
            return float(np.max(values))
        return len(values)
