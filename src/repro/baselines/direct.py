"""Direct per-sensor IP collection — the status quo of the paper's §II.

Two variants of the pre-SenSORCER world:

* **poll** — a collection point polls every sensor node over raw TCP
  request/reply ("the data collection specialist has to connect to the
  sensor externally and collect the readings");
* **stream** — sensor nodes push every sample to a hard-coded collector
  address (the client-to-server data-flow problem of §II.4).

No registry, no leases, no federation: nodes are addressed by host name,
failures surface as timeouts, and every tiny reading pays the full
transport header — which is precisely what experiments E-OVH and E-SCALE
quantify against the federated design.
"""

from __future__ import annotations

from itertools import count

import numpy as np

from ..net.host import Host
from ..net.message import Message
from ..net.wire import Protocol
from ..sensors.probe import ProbeError, SensorProbe

__all__ = ["DirectSensorNode", "DirectPollingCollector", "StreamingSensorNode",
           "StreamCollector"]

POLL_PORT = "sensor.poll"
REPLY_PORT = "sensor.reply"
STREAM_PORT = "sensor.stream"


class DirectSensorNode:
    """A bare sensor device answering raw poll requests."""

    def __init__(self, host: Host, probe: SensorProbe):
        self.host = host
        self.env = host.env
        self.probe = probe
        if not probe.connected:
            probe.connect()
        host.open_port(POLL_PORT, self._on_poll)
        self.polls_served = 0

    def _on_poll(self, msg: Message) -> None:
        reply_to, seq = msg.payload
        self.env.process(self._answer(reply_to, seq),
                         name=f"direct-poll:{self.host.name}")

    def _answer(self, reply_to: str, seq: int):
        try:
            reading = yield self.env.process(self.probe.read())
            payload = (seq, True, reading.value, reading.timestamp)
        except ProbeError as exc:
            payload = (seq, False, str(exc), self.env.now)
        if self.host.up:
            self.host.send(reply_to, REPLY_PORT, kind="direct-reply",
                           payload=payload, protocol=Protocol.TCP)
            self.polls_served += 1


class DirectPollingCollector:
    """Polls a fixed list of sensor nodes by host address."""

    def __init__(self, host: Host, node_addresses: list,
                 reply_timeout: float = 2.0):
        self.host = host
        self.env = host.env
        self.node_addresses = list(node_addresses)
        self.reply_timeout = reply_timeout
        self._pending: dict[int, object] = {}
        self._seq = count(1)
        host.open_port(REPLY_PORT, self._on_reply)
        self.timeouts = 0

    def _on_reply(self, msg: Message) -> None:
        seq, ok, value, timestamp = msg.payload
        event = self._pending.pop(seq, None)
        if event is not None and not event.triggered:
            event.succeed((ok, value, timestamp))

    def poll_one(self, address: str):
        """Poll a single node (generator). Returns the value or None."""
        seq = next(self._seq)
        event = self.env.event()
        self._pending[seq] = event
        self.host.send(address, POLL_PORT, kind="direct-poll",
                       payload=(self.host.name, seq), protocol=Protocol.TCP)
        timed = self.env.timeout(self.reply_timeout, value=None)
        yield self.env.any_of([event, timed])
        if not event.triggered:
            self._pending.pop(seq, None)
            self.timeouts += 1
            return None
        ok, value, _timestamp = event.value
        return value if ok else None

    def collect_all(self):
        """Poll every node concurrently (generator). Returns
        {address: value-or-None}."""
        procs = {address: self.env.process(self.poll_one(address),
                                           name=f"poll:{address}")
                 for address in self.node_addresses}
        yield self.env.all_of(list(procs.values()))
        return {address: proc.value for address, proc in procs.items()}

    def collect_all_sequential(self):
        """One node at a time — the naive collection loop (generator)."""
        out = {}
        for address in self.node_addresses:
            out[address] = yield from self.poll_one(address)
        return out

    def collect_average(self, sequential: bool = False):
        values = yield from (self.collect_all_sequential() if sequential
                             else self.collect_all())
        good = [v for v in values.values() if v is not None]
        if not good:
            raise RuntimeError("no sensor answered the poll round")
        return float(np.mean(good))


class StreamingSensorNode:
    """Pushes every sample to a hard-coded collector address (§II.4)."""

    def __init__(self, host: Host, probe: SensorProbe, collector: str,
                 interval: float = 1.0):
        self.host = host
        self.env = host.env
        self.probe = probe
        self.collector = collector
        self.interval = interval
        self.sent = 0
        self._active = False
        if not probe.connected:
            probe.connect()

    def start(self) -> None:
        if not self._active:
            self._active = True
            self.env.process(self._pump(), name=f"stream:{self.host.name}")

    def stop(self) -> None:
        self._active = False

    def _pump(self):
        while self._active:
            if self.host.up:
                try:
                    reading = yield self.env.process(self.probe.read())
                    self.host.send(self.collector, STREAM_PORT,
                                   kind="direct-stream",
                                   payload=(self.host.name, reading.value,
                                            reading.timestamp),
                                   protocol=Protocol.TCP)
                    self.sent += 1
                except ProbeError:
                    pass
            yield self.env.timeout(self.interval)


class StreamCollector:
    """Receives pushed samples; keeps the latest value per node."""

    def __init__(self, host: Host):
        self.host = host
        self.latest: dict[str, float] = {}
        self.received = 0
        host.open_port(STREAM_PORT, self._on_sample)

    def _on_sample(self, msg: Message) -> None:
        source, value, _timestamp = msg.payload
        self.latest[source] = value
        self.received += 1
