"""Comparison baselines: direct IP collection (§II), the Jini TCI/SSP/ASP
framework (§III.A) and the surrogate-architecture framework (§III.B)."""

from .direct import (
    DirectPollingCollector,
    DirectSensorNode,
    StreamCollector,
    StreamingSensorNode,
)
from .surrogate import DeviceLink, DeviceSurrogate, SurrogateHost
from .tci import (
    ApplicationServiceProvider,
    TciSensorServiceProvider,
    TerminalCommunicationInterface,
)

__all__ = [
    "ApplicationServiceProvider",
    "DeviceLink",
    "DeviceSurrogate",
    "DirectPollingCollector",
    "DirectSensorNode",
    "StreamCollector",
    "StreamingSensorNode",
    "SurrogateHost",
    "TciSensorServiceProvider",
    "TerminalCommunicationInterface",
]
