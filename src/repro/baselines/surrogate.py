"""The surrogate-architecture framework — related work B (§III.B).

Blumenthal et al.'s component framework uses Sun's Jini *surrogate
architecture*: a resource-poor device cannot run a JVM, so a **surrogate**
object acts for it inside a **surrogate host** on the network; every
application request to the surrogate is forwarded to the device over its
interconnect.

The paper's critique, which this implementation makes measurable: "most of
the sensors generate data at a very fast rate, the service provided by the
single sensor should be capable of storing data to the local store. By
using the surrogate architecture, the sensors can be used in network
applications, but the effective use of such sensor node is questionable."
A surrogate has **no local store** — every ``getValue`` crosses the slow
device link and costs device energy, while an ESP answers from its buffer.
"""

from __future__ import annotations

from typing import Optional

from ..jini.entries import Name, SensorType
from ..jini.join import JoinManager
from ..jini.template import ServiceItem
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..sensors.probe import SensorProbe
from ..sim import Environment, Resource

__all__ = ["DeviceLink", "SurrogateHost", "DeviceSurrogate"]


class DeviceLink:
    """The device-side interconnect the surrogate forwards over.

    Models a low-rate radio: fixed round-trip latency, one request at a
    time (the mote's single radio), and per-request energy cost charged to
    the device (if it exposes ``consume_read``-style accounting through its
    probe)."""

    def __init__(self, env: Environment, round_trip: float = 0.08):
        self.env = env
        self.round_trip = round_trip
        self._radio = Resource(env, capacity=1)
        self.requests = 0

    def forward_read(self, probe: SensorProbe):
        """Carry one read request to the device and back (generator)."""
        grant = self._radio.request()
        yield grant
        try:
            yield self.env.timeout(self.round_trip / 2)
            reading = yield self.env.process(probe.read())
            yield self.env.timeout(self.round_trip / 2)
            self.requests += 1
            return reading
        finally:
            self._radio.release(grant)


class DeviceSurrogate:
    """The surrogate object: the device's stand-in on the network.

    Implements the same ``SensorDataAccessor``-ish reads as an ESP but with
    no buffer — each request is forwarded to the device live.
    """

    REMOTE_TYPES = ("SensorDataAccessor", "DeviceSurrogate")
    REMOTE_METHODS = ("getValue", "getReading", "getInfo")

    def __init__(self, surrogate_host: "SurrogateHost", name: str,
                 probe: SensorProbe, link: DeviceLink):
        self.surrogate_host = surrogate_host
        self.env = surrogate_host.env
        self.name = name
        self.probe = probe
        self.link = link
        if not probe.connected:
            probe.connect()
        self.service_id = surrogate_host.host.network.ids.uuid()
        self.ref = surrogate_host.endpoint.export(
            self, f"surrogate:{self.service_id}", methods=self.REMOTE_METHODS)
        self._join: Optional[JoinManager] = None

    def start(self) -> "DeviceSurrogate":
        if self._join is None:
            teds = self.probe.teds
            item = ServiceItem(
                service_id=self.service_id, service=self.ref,
                attributes=(Name(self.name),
                            SensorType(quantity=teds.quantity,
                                       unit=teds.unit,
                                       technology="surrogate")))
            self._join = JoinManager(self.surrogate_host.host, item,
                                     lease_duration=10.0)
            self._join.start()
        return self

    # -- remote API (every call crosses the device link) -------------------------

    def getReading(self):
        reading = yield from self.link.forward_read(self.probe)
        return reading

    def getValue(self):
        reading = yield from self.link.forward_read(self.probe)
        return reading.value

    def getInfo(self):
        teds = self.probe.teds
        return {"name": self.name, "service_id": self.service_id,
                "service_type": "SURROGATE", "quantity": teds.quantity,
                "unit": teds.unit}


class SurrogateHost:
    """Hosts surrogates for devices that cannot join the network themselves."""

    def __init__(self, host: Host):
        self.host = host
        self.env = host.env
        self.endpoint = rpc_endpoint(host)
        self.surrogates: dict[str, DeviceSurrogate] = {}

    def activate(self, name: str, probe: SensorProbe,
                 link: Optional[DeviceLink] = None) -> DeviceSurrogate:
        """Load a device's surrogate (the 'export' step of the surrogate
        architecture) and join it to the lookup services."""
        if name in self.surrogates:
            raise ValueError(f"surrogate {name!r} already active")
        link = link if link is not None else DeviceLink(self.env)
        surrogate = DeviceSurrogate(self, name, probe, link)
        surrogate.start()
        self.surrogates[name] = surrogate
        return surrogate

    def deactivate(self, name: str):
        """Unload a surrogate (generator)."""
        surrogate = self.surrogates.pop(name, None)
        if surrogate is None:
            raise KeyError(f"no surrogate named {name!r}")
        if surrogate._join is not None:
            yield from surrogate._join.terminate()
        self.endpoint.unexport(f"surrogate:{surrogate.service_id}")
