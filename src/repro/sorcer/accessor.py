"""Service accessor — find providers matching a signature's template.

Fans a lookup out to every discovered LUS, merges matches by service id and
optionally waits (with periodic retry) for a provider to appear — arriving
services become visible as soon as their join manager registers them, which
is what makes exertion binding dynamic.
"""

from __future__ import annotations

from typing import Optional

from ..jini.discovery import lookup_discovery
from ..jini.template import ServiceItem, ServiceTemplate
from ..net.errors import NetworkError
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..resilience import BreakerRegistry, resilience_events
from ..snapshot.registry import register_participant
from .signature import Signature

__all__ = ["ServiceAccessor", "breaker_registry"]


def breaker_registry(host: Host) -> BreakerRegistry:
    """The host's shared per-provider circuit breakers (created on first
    use, like the host's RPC endpoint). Every accessor/exerter on the host
    consults the same registry, so a provider marked dead by one requestor
    component is skipped by all of them."""
    registry = getattr(host, "_breaker_registry", None)
    if registry is None:
        registry = BreakerRegistry(events=resilience_events(host.network))
        host._breaker_registry = registry
        register_participant(host.env,
                             f"resilience.breakers.{host.name}",
                             registry.checkpoint_state)
    return registry


class ServiceAccessor:
    """Per-requestor access to the dynamic service registry.

    ``cache_ttl > 0`` enables short-lived caching of lookup results per
    template (what SORCER's provider-proxy caching buys): repeat exertions
    against the same signature skip the LUS round trip until the entry
    expires or :meth:`invalidate` is called. The trade-off is staleness —
    a cached proxy may point at a dead provider for up to ``cache_ttl``
    seconds, which the exerter's failover already tolerates.
    """

    def __init__(self, host: Host, retry_interval: float = 0.5,
                 cache_ttl: float = 0.0):
        self.host = host
        self.env = host.env
        self.retry_interval = retry_interval
        self.cache_ttl = cache_ttl
        self.discovery = lookup_discovery(host)
        self._endpoint = rpc_endpoint(host)
        #: Host-wide per-provider circuit breakers (see breaker_registry).
        self.breakers = breaker_registry(host)
        #: template -> (expires_at, items)
        self._cache: dict = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def invalidate(self, template: Optional[ServiceTemplate] = None) -> None:
        """Drop one cached template, or the whole cache."""
        if template is None:
            self._cache.clear()
        else:
            self._cache.pop(template, None)

    def find_items(self, template: ServiceTemplate, max_matches: int = 16,
                   wait: float = 0.0):
        """All matching service items across registrars (a generator —
        run inside a process). Waits up to ``wait`` for a first match."""
        if self.cache_ttl > 0:
            cached = self._cache.get(template)
            if cached is not None and cached[0] > self.env.now and cached[1]:
                self.cache_hits += 1
                return list(cached[1])[:max_matches]
            self.cache_misses += 1
        deadline = self.env.now + wait
        while True:
            merged: dict[str, ServiceItem] = {}
            # Registrars query in discovery order (insertion-ordered dict).
            for lus_id, ref in list(  # repro: allow[DET003]
                    self.discovery.registrars.items()):
                try:
                    found = yield self._endpoint.call(
                        ref, "lookup", template, max_matches,
                        kind="lus-lookup", timeout=3.0)
                except NetworkError:
                    self.discovery.discard(lus_id)
                    continue
                for item in found:
                    merged.setdefault(item.service_id, item)
                if len(merged) >= max_matches:
                    break
            if merged or self.env.now >= deadline:
                items = list(merged.values())[:max_matches]
                if self.cache_ttl > 0 and items:
                    self._cache[template] = (self.env.now + self.cache_ttl,
                                             list(items))
                return items
            yield self.env.timeout(self.retry_interval)

    def find_one(self, template: ServiceTemplate, wait: float = 0.0):
        items = yield from self.find_items(template, max_matches=1, wait=wait)
        return items[0] if items else None

    def find_for(self, signature: Signature, max_matches: int = 16,
                 wait: float = 0.0):
        """Providers able to serve ``signature``."""
        items = yield from self.find_items(signature.template(),
                                           max_matches=max_matches, wait=wait)
        return items
