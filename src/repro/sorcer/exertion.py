"""Exertions — SORCER's federated service requests.

An exertion bundles *data* (a :class:`~repro.sorcer.context.ServiceContext`),
*operations* (:class:`~repro.sorcer.signature.Signature`) and a *control
strategy*. A :class:`Task` is an elementary request executed by a single
provider; a :class:`Job` composes tasks and other jobs and is executed by a
rendezvous peer (Jobber for direct PUSH federation, Spacer for space-based
PULL federation).

The requestor never names a provider — ``exert`` sends the request *onto the
network* and the runtime binds it to whatever matching providers are alive,
forming the exertion federation (§IV.D).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from ..resilience import Deadline, RetryPolicy
from .context import ServiceContext
from .signature import Signature

__all__ = ["Exertion", "Task", "Job", "ControlContext", "Strategy", "Access",
           "ExertionStatus", "TraceRecord", "Pipe"]


class ExertionStatus(Enum):
    INITIAL = "initial"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Strategy(Enum):
    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


class Access(Enum):
    #: Direct federated method invocation to discovered providers.
    PUSH = "push"
    #: Drop into the exertion space; workers pull and execute.
    PULL = "pull"


@dataclass
class ControlContext:
    strategy: Strategy = Strategy.SEQUENTIAL
    access: Access = Access.PUSH
    #: Give up finding a provider after this long.
    provider_wait: float = 10.0
    #: Per-invocation RPC timeout.
    invocation_timeout: float = 30.0
    #: Retries on alternate providers after a provider failure.
    retries: int = 2
    #: End-to-end time budget (absolute sim-time expiry). When set, the
    #: exerter clamps ``provider_wait``, every per-attempt timeout and every
    #: backoff delay to the remaining budget, and forwards the expiry to
    #: providers so nested exertions inherit it instead of compounding
    #: their own timeouts.
    deadline: Optional[Deadline] = None
    #: Backoff between retry attempts; ``None`` uses the exerter's default
    #: policy. Delays are jittered deterministically (seeded per host).
    backoff: Optional[RetryPolicy] = None


@dataclass
class TraceRecord:
    """Who executed what, where and when — the exertion's audit trail."""

    exertion: str
    provider: str
    host: str
    started_at: float
    finished_at: float
    note: str = ""


@dataclass
class Pipe:
    """Connects one component's output path to another's input path."""

    from_exertion: str
    from_path: str
    to_exertion: str
    to_path: str


class Exertion:
    """Common behaviour of tasks and jobs."""

    def __init__(self, name: str, context: Optional[ServiceContext] = None,
                 principal: str = "anonymous"):
        self.name = name
        self.context = context if context is not None else ServiceContext(f"{name}-ctx")
        self.control = ControlContext()
        self.status = ExertionStatus.INITIAL
        self.exceptions: list[str] = []
        self.trace: list[TraceRecord] = []
        #: Who is asking. Providers with an access policy check this before
        #: invoking operations (§IV.D: "if the requestor is authorized").
        self.principal = principal

    @property
    def is_done(self) -> bool:
        return self.status is ExertionStatus.DONE

    @property
    def is_failed(self) -> bool:
        return self.status is ExertionStatus.FAILED

    def report_exception(self, exc: BaseException | str) -> None:
        self.exceptions.append(str(exc))
        self.status = ExertionStatus.FAILED

    def copy(self) -> "Exertion":
        """Deep copy — models serialization across the network boundary."""
        return copy.deepcopy(self)

    def get_return_value(self, default: Any = None) -> Any:
        return self.context.get_return_value(default)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} {self.status.value}>"


class Task(Exertion):
    """Elementary exertion: one signature, one provider."""

    def __init__(self, name: str, signature: Signature,
                 context: Optional[ServiceContext] = None,
                 principal: str = "anonymous"):
        super().__init__(name, context, principal=principal)
        self.signature = signature


class Job(Exertion):
    """Composite exertion: nested tasks/jobs plus data pipes between them.

    The job's own context aggregates component results: when component ``c``
    finishes, its return value lands at job path ``c/<return_path>``.
    """

    def __init__(self, name: str, exertions: Optional[list[Exertion]] = None,
                 context: Optional[ServiceContext] = None,
                 strategy: Strategy = Strategy.SEQUENTIAL,
                 access: Access = Access.PUSH,
                 principal: str = "anonymous"):
        super().__init__(name, context, principal=principal)
        self.exertions: list[Exertion] = list(exertions or [])
        self.control.strategy = strategy
        self.control.access = access
        self.pipes: list[Pipe] = []

    def add(self, exertion: Exertion) -> "Job":
        if any(e.name == exertion.name for e in self.exertions):
            raise ValueError(f"duplicate component exertion name {exertion.name!r}")
        self.exertions.append(exertion)
        return self

    def component(self, name: str) -> Exertion:
        for e in self.exertions:
            if e.name == name:
                return e
        raise KeyError(f"no component exertion named {name!r} in job {self.name!r}")

    def pipe(self, from_exertion: str, from_path: str,
             to_exertion: str, to_path: str) -> "Job":
        """Feed ``from_exertion``'s output into ``to_exertion``'s input.

        Only meaningful under SEQUENTIAL strategy (the source must complete
        before the sink starts); validated at dispatch time.
        """
        names = [e.name for e in self.exertions]
        for end in (from_exertion, to_exertion):
            if end not in names:
                raise KeyError(f"pipe endpoint {end!r} is not a component of {self.name!r}")
        if names.index(from_exertion) >= names.index(to_exertion):
            raise ValueError(
                f"pipe must flow forward: {from_exertion!r} -> {to_exertion!r}")
        self.pipes.append(Pipe(from_exertion, from_path, to_exertion, to_path))
        return self
