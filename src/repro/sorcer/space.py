"""Exertion space — a JavaSpaces-like tuple space for PULL federations.

Requestors (via the Spacer) *write* task envelopes; worker peers *take*
envelopes matching their capabilities, execute them and *write back*
results. Takes can run under a transaction: if the taker dies before
committing, the transaction manager aborts and the envelope is restored, so
no exertion is lost to a worker crash — the fault-tolerance half of the
space-based strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..jini.txn import Vote
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..sim import Store
from .exertion import Task

__all__ = ["ExertionSpace", "SpaceTemplate", "Envelope", "EnvelopeState"]


class EnvelopeState(Enum):
    WAITING = "waiting"
    TAKEN = "taken"
    DONE = "done"


@dataclass(frozen=True)
class SpaceTemplate:
    """Matches envelopes by the task signature's coordinates (None = any)."""

    service_type: Optional[str] = None
    selector: Optional[str] = None
    provider_name: Optional[str] = None

    def matches(self, envelope: "Envelope") -> bool:
        sig = envelope.task.signature
        if self.service_type is not None and sig.service_type != self.service_type:
            return False
        if self.selector is not None and sig.selector != self.selector:
            return False
        if self.provider_name is not None and sig.provider_name != self.provider_name:
            return False
        return True


@dataclass
class Envelope:
    envelope_id: str
    task: Task
    state: EnvelopeState = EnvelopeState.WAITING
    result: Optional[Task] = None
    taken_by_txn: Optional[int] = None


class ExertionSpace:
    """The space service. Export with :func:`repro.net.rpc.rpc_endpoint`;
    register with the LUS via :func:`repro.sorcer.provider.join_service`."""

    REMOTE_TYPES = ("ExertionSpace",)
    REMOTE_METHODS = ("write", "take", "read", "write_result", "take_result",
                      "prepare", "commit", "abort", "pending_count")

    def __init__(self, host: Host, name: str = "Exertion Space"):
        self.host = host
        self.env = host.env
        self.name = name
        self._envelopes: dict[str, Envelope] = {}
        #: Envelope ids available for take.
        self._pool = Store(host.env)
        #: Per-envelope completion events for result waiters.
        self._done_events: dict[str, list] = {}
        #: txn_id -> envelope ids taken under it.
        self._txn_takes: dict[int, list[str]] = {}
        self._endpoint = rpc_endpoint(host)
        self.ref = self._endpoint.export(self, f"space:{host.name}",
                                         methods=self.REMOTE_METHODS)

    # -- remote API -------------------------------------------------------------

    def write(self, task: Task) -> str:
        """Deposit a task; returns its envelope id."""
        envelope_id = self.host.network.ids.uuid()
        envelope = Envelope(envelope_id=envelope_id, task=task.copy())
        self._envelopes[envelope_id] = envelope
        self._pool.put(envelope_id)
        return envelope_id

    def take(self, template, txn_id: Optional[int] = None,
             timeout: float = 10.0):
        """Blocking take of an envelope matching the template — or *any* of
        a list of templates (generator). Returns the :class:`Envelope` or
        ``None`` on timeout."""
        templates = (list(template) if isinstance(template, (list, tuple))
                     else [template])
        get_ev = self._pool.get(
            lambda eid: any(t.matches(self._envelopes[eid])
                            for t in templates))
        timed = self.env.timeout(timeout, value=None)
        outcome = yield self.env.any_of([get_ev, timed])
        if not get_ev.triggered:
            get_ev.cancel()
            return None
        envelope = self._envelopes[get_ev.value]
        envelope.state = EnvelopeState.TAKEN
        if txn_id is not None:
            envelope.taken_by_txn = txn_id
            self._txn_takes.setdefault(txn_id, []).append(envelope.envelope_id)
        return envelope

    def read(self, template: SpaceTemplate) -> Optional[Envelope]:
        """Non-destructive read of the first waiting match (non-blocking)."""
        for eid in self._pool.peek_all():
            envelope = self._envelopes[eid]
            if template.matches(envelope):
                return envelope
        return None

    def write_result(self, envelope_id: str, result: Task) -> None:
        envelope = self._envelopes.get(envelope_id)
        if envelope is None:
            raise KeyError(f"unknown envelope {envelope_id!r}")
        envelope.result = result
        envelope.state = EnvelopeState.DONE
        for event in self._done_events.pop(envelope_id, []):
            event.succeed(result)

    def take_result(self, envelope_id: str, timeout: float = 30.0):
        """Blocking wait for an envelope's result (generator). Returns the
        resulting task or ``None`` on timeout."""
        envelope = self._envelopes.get(envelope_id)
        if envelope is None:
            raise KeyError(f"unknown envelope {envelope_id!r}")
        if envelope.state is EnvelopeState.DONE:
            self._envelopes.pop(envelope_id, None)
            return envelope.result
        event = self.env.event()
        self._done_events.setdefault(envelope_id, []).append(event)
        timed = self.env.timeout(timeout, value=None)
        yield self.env.any_of([event, timed])
        if not event.triggered:
            try:
                self._done_events.get(envelope_id, []).remove(event)
            except ValueError:
                pass
            return None
        self._envelopes.pop(envelope_id, None)
        return event.value

    def pending_count(self) -> int:
        return len(self._pool)

    # -- transaction participant ----------------------------------------------------

    def prepare(self, txn_id: int) -> Vote:
        if txn_id not in self._txn_takes:
            return Vote.NOTCHANGED
        return Vote.PREPARED

    def commit(self, txn_id: int) -> None:
        """Takes under this txn become permanent."""
        for envelope_id in self._txn_takes.pop(txn_id, []):
            envelope = self._envelopes.get(envelope_id)
            if envelope is not None:
                envelope.taken_by_txn = None

    def abort(self, txn_id: int) -> None:
        """Restore envelopes taken under this txn to the pool."""
        for envelope_id in self._txn_takes.pop(txn_id, []):
            envelope = self._envelopes.get(envelope_id)
            if envelope is None or envelope.state is EnvelopeState.DONE:
                continue
            envelope.state = EnvelopeState.WAITING
            envelope.taken_by_txn = None
            self._pool.put(envelope_id)
