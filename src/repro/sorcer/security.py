"""Access control for provider operations (§IV.D, §VIII).

"When the servicer accepts its received exertion, then the exertion's
operations can be invoked by the servicer itself, **if the requestor is
authorized to do so**" — and the conclusion credits "the security provided
by Java/Jini security services". We model the decision point: every
exertion carries a ``principal`` and a provider may be given an
:class:`AccessPolicy` consulted before dispatch.

:class:`AclPolicy` is the useful concrete policy: per-selector principal
allow-lists with a wildcard. Denials surface as a failed exertion carrying
an :class:`AuthorizationError` message — the requestor learns it was
refused, not what else exists.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["AccessPolicy", "AllowAll", "AclPolicy", "AuthorizationError"]

#: Wildcards accepted in ACL tables.
ANY_PRINCIPAL = "*"
ANY_SELECTOR = "*"


class AuthorizationError(PermissionError):
    """The requestor's principal may not invoke this operation."""


class AccessPolicy:
    """Decides whether ``principal`` may invoke ``selector``."""

    def allows(self, principal: str, selector: str) -> bool:  # pragma: no cover
        raise NotImplementedError


class AllowAll(AccessPolicy):
    """The default open policy (a lab network)."""

    def allows(self, principal: str, selector: str) -> bool:
        return True


class AclPolicy(AccessPolicy):
    """Selector -> allowed principals, with ``*`` wildcards.

    Example::

        AclPolicy({
            "getValue": {"*"},                       # anyone reads
            "setExpression": {"admin", "facade"},    # management restricted
            "*": {"admin"},                          # admin can do anything
        })
    """

    def __init__(self, table: Mapping[str, Iterable[str]]):
        self._table = {selector: frozenset(principals)
                       for selector, principals in table.items()}

    def allows(self, principal: str, selector: str) -> bool:
        for key in (selector, ANY_SELECTOR):
            principals = self._table.get(key)
            if principals and (principal in principals
                               or ANY_PRINCIPAL in principals):
                return True
        return False
