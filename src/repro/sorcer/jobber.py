"""Jobber — the PUSH rendezvous peer coordinating job execution.

Receives a :class:`~repro.sorcer.exertion.Job`, runs its components
(sequentially or in parallel per the job's control strategy) by exerting
each back onto the network, applies data pipes between sequential
components, and aggregates component results into the job's context under
``<component>/<return path>``.
"""

from __future__ import annotations

from typing import Optional

from ..net.host import Host
from ..observability import propagate_trace
from .exertion import (
    Exertion,
    ExertionStatus,
    Job,
    Strategy,
)
from .exerter import Exerter
from .provider import ServiceProvider

__all__ = ["Jobber"]


class Jobber(ServiceProvider):
    """Rendezvous peer for direct (PUSH) federations."""

    SERVICE_TYPES = ("Jobber",)

    def __init__(self, host: Host, name: str = "Jobber", **kwargs):
        super().__init__(host, name, **kwargs)
        self.exerter = Exerter(host)

    def _execute(self, exertion: Exertion, txn_id: Optional[int]):
        if not isinstance(exertion, Job):
            raise TypeError(f"Jobber got a {type(exertion).__name__}; jobs only")
        job = exertion
        if job.control.strategy is Strategy.PARALLEL and job.pipes:
            raise ValueError(
                "pipes between components require SEQUENTIAL strategy")
        if job.control.strategy is Strategy.PARALLEL:
            yield from self._run_parallel(job, txn_id)
        else:
            yield from self._run_sequential(job, txn_id)
        failed = [e for e in job.exertions if e.is_failed]
        if failed:
            job.report_exception(
                f"{len(failed)} component exertion(s) failed: "
                + ", ".join(e.name for e in failed))
        else:
            job.status = ExertionStatus.DONE
        return job

    # -- strategies -----------------------------------------------------------

    def _run_sequential(self, job: Job, txn_id: Optional[int]):
        for index, component in enumerate(list(job.exertions)):
            self._apply_pipes(job, component)
            # Component hops become children of this jobber's serve span.
            propagate_trace(job.context, component.context)
            result = yield self.env.process(
                self.exerter.exert(component, txn_id),
                name=f"jobber-seq:{component.name}")
            job.exertions[index] = result
            self._collect(job, result)
            if result.is_failed:
                # Fail fast: downstream components likely depend on this one.
                for rest in job.exertions[index + 1:]:
                    rest.report_exception(
                        f"skipped: upstream {result.name!r} failed")
                return

    def _run_parallel(self, job: Job, txn_id: Optional[int]):
        for component in job.exertions:
            propagate_trace(job.context, component.context)
        procs = [self.env.process(self.exerter.exert(component, txn_id),
                                  name=f"jobber-par:{component.name}")
                 for component in job.exertions]
        results = yield self.env.all_of(procs)
        job.exertions = list(results)
        for result in results:
            self._collect(job, result)

    # -- data flow ------------------------------------------------------------------

    def _apply_pipes(self, job: Job, component: Exertion) -> None:
        for pipe in job.pipes:
            if pipe.to_exertion != component.name:
                continue
            source = job.component(pipe.from_exertion)
            if not source.is_done:
                raise ValueError(
                    f"pipe source {pipe.from_exertion!r} has not completed")
            value = source.context.get_value(pipe.from_path)
            component.context.put_in_value(pipe.to_path, value)

    def _collect(self, job: Job, result: Exertion) -> None:
        prefix = result.name
        return_value = result.context.get_return_value(default=None)
        job.context.put_value(f"{prefix}/{result.context.return_path}",
                              return_value)
