"""Spacer and space workers — the PULL half of exertion dispatch.

The :class:`Spacer` is the rendezvous peer for jobs with
``Access.PULL``: it drops every component task into the exertion space and
waits for results. :class:`SpaceWorker` attaches to a concrete provider and
pulls matching envelopes: take under a transaction, execute locally, write
the result back, commit. A worker crash before commit lets the transaction
lapse, the space restores the envelope, and another worker picks it up —
no lost exertions.
"""

from __future__ import annotations

from typing import Optional

from ..net.errors import NetworkError
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability import propagate_trace
from .accessor import ServiceAccessor
from .exertion import Exertion, ExertionStatus, Job, Strategy, Task
from .provider import ServiceProvider
from .space import SpaceTemplate

__all__ = ["Spacer", "SpaceWorker"]

SPACE_TYPE = "ExertionSpace"


class Spacer(ServiceProvider):
    """Rendezvous peer for space-based (PULL) federations."""

    SERVICE_TYPES = ("Spacer",)

    def __init__(self, host: Host, name: str = "Spacer",
                 result_timeout: float = 30.0, **kwargs):
        super().__init__(host, name, **kwargs)
        self.accessor = ServiceAccessor(host)
        self.result_timeout = result_timeout

    def _find_space(self):
        from ..jini.template import ServiceTemplate
        item = yield from self.accessor.find_one(
            ServiceTemplate.by_type(SPACE_TYPE), wait=5.0)
        return item.service if item is not None else None

    def _execute(self, exertion: Exertion, txn_id: Optional[int]):
        if not isinstance(exertion, Job):
            raise TypeError(f"Spacer got a {type(exertion).__name__}; jobs only")
        job = exertion
        space_ref = yield from self._find_space()
        if space_ref is None:
            raise LookupError("no exertion space on the network")
        if job.control.strategy is Strategy.PARALLEL and job.pipes:
            raise ValueError("pipes between components require SEQUENTIAL strategy")
        if job.control.strategy is Strategy.PARALLEL:
            yield from self._run_parallel(job, space_ref)
        else:
            yield from self._run_sequential(job, space_ref)
        failed = [e for e in job.exertions if e.is_failed]
        if failed:
            job.report_exception(
                f"{len(failed)} component exertion(s) failed: "
                + ", ".join(e.name for e in failed))
        else:
            job.status = ExertionStatus.DONE
        return job

    # -- strategies -----------------------------------------------------------

    def _dispatch_one(self, component: Task, space_ref: RemoteRef):
        envelope_id = yield self._endpoint.call(
            space_ref, "write", component, kind="space-write")
        result = yield self._endpoint.call(
            space_ref, "take_result", envelope_id, self.result_timeout,
            kind="space-result", timeout=self.result_timeout + 5.0)
        if result is None:
            component = component.copy()
            component.report_exception(
                f"no worker produced a result within {self.result_timeout}s")
            return component
        return result

    def _run_sequential(self, job: Job, space_ref: RemoteRef):
        for index, component in enumerate(list(job.exertions)):
            if not isinstance(component, Task):
                component = component.copy()
                component.report_exception(
                    "space-based dispatch supports task components only")
                job.exertions[index] = component
                return
            self._apply_pipes(job, component)
            # The worker-side serve span parents here even though the hop
            # goes through the space: the link rides the task's context.
            propagate_trace(job.context, component.context)
            result = yield from self._dispatch_one(component, space_ref)
            job.exertions[index] = result
            self._collect(job, result)
            if result.is_failed:
                for rest in job.exertions[index + 1:]:
                    rest.report_exception(f"skipped: upstream {result.name!r} failed")
                return

    def _run_parallel(self, job: Job, space_ref: RemoteRef):
        procs = []
        for component in job.exertions:
            if not isinstance(component, Task):
                raise TypeError("space-based dispatch supports task components only")
            propagate_trace(job.context, component.context)
            procs.append(self.env.process(
                self._dispatch_one(component, space_ref),
                name=f"spacer:{component.name}"))
        results = yield self.env.all_of(procs)
        job.exertions = list(results)
        for result in results:
            self._collect(job, result)

    # -- data flow (same conventions as the Jobber) ------------------------------------

    def _apply_pipes(self, job: Job, component: Exertion) -> None:
        for pipe in job.pipes:
            if pipe.to_exertion != component.name:
                continue
            source = job.component(pipe.from_exertion)
            if not source.is_done:
                raise ValueError(f"pipe source {pipe.from_exertion!r} has not completed")
            component.context.put_in_value(
                pipe.to_path, source.context.get_value(pipe.from_path))

    def _collect(self, job: Job, result: Exertion) -> None:
        job.context.put_value(
            f"{result.name}/{result.context.return_path}",
            result.context.get_return_value(default=None))


class SpaceWorker:
    """Pulls envelopes matching a provider's capabilities and executes them.

    ``use_transactions=True`` wraps each take in a transaction from the
    given transaction manager so a crash restores the envelope.
    """

    def __init__(self, provider: ServiceProvider, space_ref: RemoteRef,
                 txn_manager_ref: Optional[RemoteRef] = None,
                 poll_timeout: float = 5.0,
                 txn_duration: float = 30.0):
        self.provider = provider
        self.host = provider.host
        self.env = provider.env
        self.space_ref = space_ref
        self.txn_manager_ref = txn_manager_ref
        self.poll_timeout = poll_timeout
        self.txn_duration = txn_duration
        self._endpoint = rpc_endpoint(self.host)
        self._active = False
        self.executed = 0

    def templates(self) -> list[SpaceTemplate]:
        return [SpaceTemplate(service_type=t)
                for t in self.provider.service_types if t != "Servicer"]

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self.env.process(self._loop(), name=f"space-worker:{self.provider.name}")

    def stop(self) -> None:
        self._active = False

    def _loop(self):
        templates = self.templates()
        while self._active:
            if not self.host.up:
                yield self.env.timeout(1.0)
                continue
            worked = yield from self._work_one(templates)
            if not worked:
                yield self.env.timeout(0.1)

    def _work_one(self, template):
        txn_id = None
        try:
            if self.txn_manager_ref is not None:
                created = yield self._endpoint.call(
                    self.txn_manager_ref, "create", self.txn_duration,
                    kind="txn-create")
                txn_id = created.txn_id
                yield self._endpoint.call(
                    self.txn_manager_ref, "join", txn_id, self.space_ref,
                    kind="txn-join")
            envelope = yield self._endpoint.call(
                self.space_ref, "take", template, txn_id, self.poll_timeout,
                kind="space-take", timeout=self.poll_timeout + 5.0)
            if envelope is None:
                if txn_id is not None:
                    yield self._endpoint.call(self.txn_manager_ref, "abort",
                                              txn_id, kind="txn-abort")
                return False
            # Execute locally: the worker lives on the provider's host.
            result = yield self.env.process(
                self.provider.service(envelope.task, txn_id))
            yield self._endpoint.call(
                self.space_ref, "write_result", envelope.envelope_id, result,
                kind="space-result-write")
            if txn_id is not None:
                yield self._endpoint.call(self.txn_manager_ref, "commit",
                                          txn_id, kind="txn-commit", timeout=10.0)
            self.executed += 1
            return True
        except NetworkError:
            # Space or txn manager unreachable; retry after a beat.
            yield self.env.timeout(1.0)
            return False
