"""Tasker — the generic domain task peer.

Concrete domain providers usually subclass :class:`Tasker` and register
operations; it adds the ``Tasker`` remote type so infrastructure tooling can
tell task peers from rendezvous peers.
"""

from __future__ import annotations

from .provider import ServiceProvider

__all__ = ["Tasker"]


class Tasker(ServiceProvider):
    SERVICE_TYPES = ("Tasker",)
