"""Federated method invocation — ``exert`` sends an exertion onto the network.

The requestor-side runtime: bind a task to any live provider matching its
signature (trying alternates on failure — the paper's "request can be passed
on to the equivalent available service provider"), or route a job to a
rendezvous peer (Jobber for PUSH, Spacer for PULL). If nothing matches and
the signature carries ``provision=True``, an attached provisioner is asked
to instantiate a provider before giving up.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.errors import NetworkError
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from .accessor import ServiceAccessor
from .exertion import Access, Exertion, Job, Task
from .signature import Signature

__all__ = ["Exerter"]

JOBBER_TYPE = "Jobber"
SPACER_TYPE = "Spacer"


class Exerter:
    """Requestor-side exertion runtime bound to one host."""

    def __init__(self, host: Host, accessor: Optional[ServiceAccessor] = None,
                 provisioner: Optional[Callable] = None):
        """``provisioner``, if given, is a generator function
        ``provisioner(signature)`` that tries to instantiate a matching
        provider (returns truthy on success)."""
        self.host = host
        self.env = host.env
        self.accessor = accessor if accessor is not None else ServiceAccessor(host)
        self.provisioner = provisioner
        self._endpoint = rpc_endpoint(host)
        #: Rotates candidate lists so equivalent providers share the load.
        self._rotation = 0

    # -- public API ---------------------------------------------------------------

    def exert(self, exertion: Exertion, txn_id: Optional[int] = None):
        """Run the exertion on the network; a generator returning the
        resulting exertion (never raises for modelled failures — inspect
        ``result.status`` / ``result.exceptions``)."""
        if isinstance(exertion, Job):
            result = yield from self._exert_job(exertion, txn_id)
        elif isinstance(exertion, Task):
            result = yield from self._exert_task(exertion, txn_id)
        else:
            raise TypeError(f"cannot exert {type(exertion).__name__}")
        return result

    # -- internals ------------------------------------------------------------------

    def _exert_task(self, task: Task, txn_id: Optional[int],
                    _fresh_lookup: bool = False):
        signature = task.signature
        control = task.control
        items = yield from self._find_providers(signature, control.provider_wait)
        if not items:
            task = task.copy()
            task.report_exception(
                f"no provider for {signature} within {control.provider_wait}s")
            return task
        attempts = 1 + max(0, control.retries)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            # Cycle through candidates; with a single candidate this is a
            # plain retransmission (a lost message, not a dead provider).
            item = items[attempt % len(items)]
            try:
                result = yield self._endpoint.call(
                    item.service, "service", task, txn_id,
                    kind="exertion", timeout=control.invocation_timeout)
                return result
            except NetworkError as exc:
                last_error = exc
                continue
        if not _fresh_lookup and getattr(self.accessor, "cache_ttl", 0) > 0:
            # Every candidate failed: the accessor's cache may be stale
            # (provider churn). Invalidate and retry once with a live lookup.
            self.accessor.invalidate(signature.template())
            result = yield from self._exert_task(task, txn_id,
                                                 _fresh_lookup=True)
            return result
        task = task.copy()
        task.report_exception(f"all candidate providers failed: {last_error!r}")
        return task

    def _exert_job(self, job: Job, txn_id: Optional[int]):
        rendezvous_type = (SPACER_TYPE if job.control.access is Access.PULL
                           else JOBBER_TYPE)
        signature = Signature(rendezvous_type, "service")
        items = yield from self._find_providers(signature, job.control.provider_wait)
        if not items:
            job = job.copy()
            job.report_exception(
                f"no {rendezvous_type} rendezvous peer on the network")
            return job
        last_error: Optional[BaseException] = None
        for attempt in range(1 + max(0, job.control.retries)):
            item = items[attempt % len(items)]
            try:
                result = yield self._endpoint.call(
                    item.service, "service", job, txn_id,
                    kind="exertion", timeout=job.control.invocation_timeout)
                return result
            except NetworkError as exc:
                last_error = exc
                continue
        job = job.copy()
        job.report_exception(f"rendezvous invocation failed: {last_error!r}")
        return job

    def _find_providers(self, signature: Signature, wait: float):
        items = yield from self.accessor.find_for(signature, wait=wait)
        if not items and signature.provision and self.provisioner is not None:
            provisioned = yield self.env.process(self.provisioner(signature))
            if provisioned:
                items = yield from self.accessor.find_for(signature, wait=wait)
        if len(items) > 1:
            # Round-robin over equivalent providers (stable id order), so
            # concurrent tasks of a parallel job spread across the grid.
            items = sorted(items, key=lambda item: item.service_id)
            offset = self._rotation % len(items)
            self._rotation += 1
            items = items[offset:] + items[:offset]
        return items
