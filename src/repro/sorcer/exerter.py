"""Federated method invocation — ``exert`` sends an exertion onto the network.

The requestor-side runtime: bind a task to any live provider matching its
signature (trying alternates on failure — the paper's "request can be passed
on to the equivalent available service provider"), or route a job to a
rendezvous peer (Jobber for PUSH, Spacer for PULL). If nothing matches and
the signature carries ``provision=True``, an attached provisioner is asked
to instantiate a provider before giving up.

Failure handling is governed by the resilience layer:

* retries back off exponentially with deterministic per-host jitter
  (:class:`~repro.resilience.RetryPolicy`) instead of hammering instantly;
* an optional :class:`~repro.resilience.Deadline` in the control context is
  an end-to-end budget — provider waits, per-attempt timeouts and backoff
  delays are all clamped to what remains, and the expiry is forwarded to
  providers so nested exertions inherit it;
* per-provider circuit breakers skip candidates that recently looked dead
  in O(1) instead of burning a timeout on each. An exertion with a deadline
  fails fast when every candidate is open-circuit; a patient exertion
  (no deadline) probes the open breaker anyway, so liveness is never lost.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.errors import HostDownError, NetworkError, RpcTimeout, UnreachableError
from ..net.host import Host
from ..net.rpc import rpc_endpoint
from ..observability import (
    NULL_SPAN,
    get_trace_parent,
    metrics_registry,
    set_trace_parent,
    tracer_of,
)
from ..overload import rejection_marker
from ..resilience import (
    DEADLINE_PATH,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    backoff_rng,
    resilience_events,
    retry_budget_of,
)
from .accessor import ServiceAccessor
from .exertion import Access, Exertion, Job, Task
from .signature import Signature

__all__ = ["Exerter"]

JOBBER_TYPE = "Jobber"
SPACER_TYPE = "Spacer"

#: Failures that indicate the *provider* (not the request) is in trouble —
#: the only ones that feed circuit breakers. A RemoteError means the host
#: answered; tripping its breaker would punish a live provider.
_BREAKER_FAILURES = (RpcTimeout, HostDownError, UnreachableError)


class Exerter:
    """Requestor-side exertion runtime bound to one host."""

    #: Default backoff between retries when the control context names none.
    DEFAULT_BACKOFF = RetryPolicy(base_delay=0.2, multiplier=2.0,
                                  max_delay=5.0, jitter=0.5)

    def __init__(self, host: Host, accessor: Optional[ServiceAccessor] = None,
                 provisioner: Optional[Callable] = None):
        """``provisioner``, if given, is a generator function
        ``provisioner(signature)`` that tries to instantiate a matching
        provider (returns truthy on success)."""
        self.host = host
        self.env = host.env
        self.accessor = accessor if accessor is not None else ServiceAccessor(host)
        self.provisioner = provisioner
        self._endpoint = rpc_endpoint(host)
        #: Per-provider circuit breakers, shared host-wide via the accessor.
        self.breakers = self.accessor.breakers
        self.events = resilience_events(host.network)
        self.tracer = tracer_of(host.network)
        registry = metrics_registry(host.network)
        self._m_latency = registry.histogram("exertion.latency", host=host.name)
        self._m_retries = registry.counter("exertion.retries", host=host.name)
        self._m_failures = registry.counter("exertion.failures", host=host.name)
        #: Stable jitter stream: independent of all other RNGs in the run.
        self._rng = backoff_rng(host.name, salt=1)
        #: Host-wide retry budget: retries are a fraction of successes, so
        #: a brownout can never be amplified into a retry storm.
        self.retry_budget = retry_budget_of(host)
        #: Rotates candidate lists so equivalent providers share the load.
        self._rotation = 0

    # -- public API ---------------------------------------------------------------

    def exert(self, exertion: Exertion, txn_id: Optional[int] = None):
        """Run the exertion on the network; a generator returning the
        resulting exertion (never raises for modelled failures — inspect
        ``result.status`` / ``result.exceptions``).

        Opens the requestor-side span of this hop. A parent link planted in
        the exertion's context (by a jobber, CSP or facade running us as a
        nested step) makes this span a child; otherwise it roots a new
        trace. Our own span id replaces the link so the provider side and
        the RPC layer hang underneath.
        """
        span = self.tracer.start_span(
            f"exert:{exertion.name}", kind="exert", host=self.host.name,
            parent_id=get_trace_parent(exertion.context))
        if span.span_id is not None:
            set_trace_parent(exertion.context, span.span_id)
        started = self.env.now
        try:
            if isinstance(exertion, Job):
                result = yield from self._exert_job(exertion, txn_id, span)
            elif isinstance(exertion, Task):
                result = yield from self._exert_task(exertion, txn_id, span)
            else:
                raise TypeError(f"cannot exert {type(exertion).__name__}")
        except BaseException:
            span.end("error")
            raise
        self._m_latency.observe(self.env.now - started)
        if result.is_failed:
            marker = rejection_marker(result.context)
            if marker is not None:
                # Shed by admission control, not failed by a provider:
                # keep it out of the failure rate (health/breakers must
                # not read load shedding as provider sickness).
                self.events.emit("overload_rejected",
                                 exertion=exertion.name,
                                 provider=marker.get("provider", ""),
                                 reason=marker.get("reason", ""),
                                 retry_after=marker.get("retry_after", 0.0))
                span.annotate("overload_rejected",
                              reason=marker.get("reason", ""))
                span.end("shed")
            else:
                self._m_failures.inc()
                span.end("failed")
        else:
            self.retry_budget.deposit()
            span.end("ok")
        return result

    # -- internals ------------------------------------------------------------------

    def _fail(self, exertion: Exertion, message: str) -> Exertion:
        exertion = exertion.copy()
        exertion.report_exception(message)
        return exertion

    def _acquire_candidate(self, items, attempt: int, patient: bool,
                           span=NULL_SPAN):
        """First candidate (in rotated order) whose breaker admits a call.

        Open breakers are a *latency* optimization, so they only hard-refuse
        when the caller declared a time budget. A patient caller (no
        deadline) prefers certainty over speed: if every breaker refuses,
        the rotated pick is probed anyway — a breaker must never turn a
        slow-but-alive federation into a permanently unreachable one.
        """
        n = len(items)
        for k in range(n):
            item = items[(attempt + k) % n]
            if self.breakers.try_acquire(item.service_id, self.env.now):
                return item
            self.events.emit("breaker_skip", provider=item.service_id)
            span.annotate("breaker_skip", provider=item.service_id)
        if not patient:
            return None
        item = items[attempt % n]
        self.events.emit("breaker_forced_probe", provider=item.service_id)
        span.annotate("breaker_forced_probe", provider=item.service_id)
        return item

    def _backoff(self, policy: RetryPolicy, attempt: int,
                 deadline: Optional[Deadline], name: str, span=NULL_SPAN):
        """Sleep the jittered backoff before retry ``attempt``; returns
        ``True`` when the retry should proceed, ``False`` when it must be
        abandoned (deadline would expire during the sleep, or the host's
        retry budget is dry)."""
        delay = policy.delay_before_retry(attempt, self._rng,
                                          deadline=deadline, now=self.env.now)
        if delay is None:
            # The retry could never finish inside its own deadline —
            # scheduling it would burn provider capacity on dead work.
            self.events.emit("retry_abandoned", exertion=name,
                             attempt=attempt)
            span.annotate("retry_abandoned", attempt=attempt)
            return False
        if not self.retry_budget.try_spend():
            self.events.emit("retry_budget_exhausted", exertion=name,
                             attempt=attempt)
            span.annotate("retry_budget_exhausted", attempt=attempt)
            return False
        self._m_retries.inc()
        self.events.emit("retry_scheduled", exertion=name, attempt=attempt,
                         delay=round(delay, 6))
        span.annotate("retry_scheduled", attempt=attempt,
                      delay=round(delay, 6))
        if delay > 0:
            yield self.env.timeout(delay)
        return True

    def _invoke_candidates(self, exertion, items, txn_id,
                           failure_label: str, span=NULL_SPAN):
        """Shared attempt loop for tasks and jobs: breaker-aware candidate
        choice, deadline-clamped timeouts, backoff between attempts.
        Returns the provider's result or raises the last failure."""
        control = exertion.control
        deadline = control.deadline
        policy = control.backoff if control.backoff is not None else self.DEFAULT_BACKOFF
        if deadline is not None:
            # Forward the expiry so the provider's own nested exertions
            # (a CSP collecting children, say) inherit the same budget.
            exertion.context.put_value(DEADLINE_PATH, deadline.expires_at)
        attempts = 1 + max(0, control.retries)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            now = self.env.now
            if deadline is not None and deadline.expired(now):
                self.events.emit("deadline_exceeded", exertion=exertion.name)
                span.annotate("deadline_exceeded")
                raise last_error if last_error is not None else DeadlineExceeded(
                    f"{exertion.name!r}: budget spent before any attempt completed")
            # Cycle through candidates; with a single candidate this is a
            # plain retransmission (a lost message, not a dead provider).
            item = self._acquire_candidate(items, attempt,
                                           patient=deadline is None,
                                           span=span)
            if item is None:
                raise CircuitOpenError(
                    f"{failure_label}: all {len(items)} candidate provider(s) "
                    "open-circuit")
            timeout = control.invocation_timeout
            if deadline is not None:
                timeout = deadline.clamp(timeout, now)
            try:
                result = yield self._endpoint.call(
                    item.service, "service", exertion, txn_id,
                    kind="exertion", timeout=timeout,
                    trace_parent=span.span_id)
                self.breakers.record_success(item.service_id, self.env.now)
                return result
            except NetworkError as exc:
                last_error = exc
                if isinstance(exc, _BREAKER_FAILURES):
                    self.breakers.record_failure(item.service_id, self.env.now)
                else:
                    # The host answered (RemoteError wraps a server-side
                    # exception), so as far as the breaker is concerned the
                    # provider is alive. Recording success also releases the
                    # half-open probe slot this call may hold — without it a
                    # probe ending in RemoteError pins the slot and the
                    # breaker refuses every later acquire (stuck open for
                    # deadline-bearing callers even after the link heals).
                    self.breakers.record_success(item.service_id, self.env.now)
                if attempt + 1 < attempts:
                    proceed = yield from self._backoff(
                        policy, attempt, deadline, exertion.name, span=span)
                    if not proceed:
                        if deadline is not None and deadline.expired(self.env.now):
                            self.events.emit("deadline_exceeded",
                                             exertion=exertion.name)
                            span.annotate("deadline_exceeded")
                        break
        raise last_error if last_error is not None else RpcTimeout(
            f"{failure_label}: no attempt completed")

    def _exert_task(self, task: Task, txn_id: Optional[int],
                    span=NULL_SPAN, _fresh_lookup: bool = False):
        signature = task.signature
        control = task.control
        deadline = control.deadline
        if deadline is not None and deadline.expired(self.env.now):
            self.events.emit("deadline_exceeded", exertion=task.name)
            span.annotate("deadline_exceeded")
            return self._fail(task, f"deadline expired before exerting {task.name!r}")
        wait = control.provider_wait
        if deadline is not None:
            wait = deadline.clamp(wait, self.env.now)
        items = yield from self._find_providers(signature, wait)
        if not items:
            return self._fail(
                task, f"no provider for {signature} within {wait}s")
        try:
            result = yield from self._invoke_candidates(
                task, items, txn_id, failure_label=f"task {task.name!r}",
                span=span)
            return result
        except CircuitOpenError as exc:
            return self._fail(task, str(exc))
        except DeadlineExceeded as exc:
            return self._fail(task, str(exc))
        except NetworkError as exc:
            last_error = exc
        if not _fresh_lookup and getattr(self.accessor, "cache_ttl", 0) > 0 \
                and not (deadline is not None and deadline.expired(self.env.now)):
            # Every candidate failed: the accessor's cache may be stale
            # (provider churn). Invalidate and retry once with a live lookup.
            self.accessor.invalidate(signature.template())
            span.annotate("cache_invalidated")
            result = yield from self._exert_task(task, txn_id, span,
                                                 _fresh_lookup=True)
            return result
        return self._fail(task, f"all candidate providers failed: {last_error!r}")

    def _exert_job(self, job: Job, txn_id: Optional[int], span=NULL_SPAN):
        rendezvous_type = (SPACER_TYPE if job.control.access is Access.PULL
                           else JOBBER_TYPE)
        signature = Signature(rendezvous_type, "service")
        deadline = job.control.deadline
        if deadline is not None and deadline.expired(self.env.now):
            self.events.emit("deadline_exceeded", exertion=job.name)
            span.annotate("deadline_exceeded")
            return self._fail(job, f"deadline expired before exerting {job.name!r}")
        wait = job.control.provider_wait
        if deadline is not None:
            wait = deadline.clamp(wait, self.env.now)
        items = yield from self._find_providers(signature, wait)
        if not items:
            return self._fail(
                job, f"no {rendezvous_type} rendezvous peer on the network")
        try:
            result = yield from self._invoke_candidates(
                job, items, txn_id, failure_label=f"job {job.name!r}",
                span=span)
            return result
        except (CircuitOpenError, DeadlineExceeded) as exc:
            return self._fail(job, str(exc))
        except NetworkError as exc:
            return self._fail(job, f"rendezvous invocation failed: {exc!r}")

    def _find_providers(self, signature: Signature, wait: float):
        items = yield from self.accessor.find_for(signature, wait=wait)
        if not items and signature.provision and self.provisioner is not None:
            provisioned = yield self.env.process(self.provisioner(signature))
            if provisioned:
                items = yield from self.accessor.find_for(signature, wait=wait)
        if len(items) > 1:
            # Round-robin over equivalent providers (stable id order), so
            # concurrent tasks of a parallel job spread across the grid.
            items = sorted(items, key=lambda item: item.service_id)
            offset = self._rotation % len(items)
            self._rotation += 1
            items = items[offset:] + items[:offset]
        return items
