"""Service contexts — the data an exertion federation collaborates on.

A :class:`ServiceContext` is a tree of ``path -> value`` associations with
slash-separated paths (``"sensor/temperature/value"``), input/output path
markings and a designated *return path*. It is the SORCER analogue of a call
frame shared by the whole federation: requestors put inputs in, providers
write outputs back, and the requestor reads results out of the returned
exertion's context (§IV.D).
"""

from __future__ import annotations

import copy
from typing import Any, Iterator, Optional

from ..net.wire import WireSized, estimate_size
from ..sim import sanitizer as _san

__all__ = ["ServiceContext", "ContextError"]

_MISSING = object()


class ContextError(KeyError):
    """A required path is absent from the context."""


def _validate_path(path: str) -> str:
    if not isinstance(path, str) or not path:
        raise ValueError(f"invalid context path {path!r}")
    if path.startswith("/") or path.endswith("/") or "//" in path:
        raise ValueError(f"malformed context path {path!r}")
    return path


class ServiceContext(WireSized):
    """Hierarchical, path-addressed collaboration data."""

    __slots__ = ("name", "_data", "_in_paths", "_out_paths", "return_path")

    def __init__(self, name: str = "context", data: Optional[dict] = None):
        self.name = name
        self._data: dict[str, Any] = {}
        self._in_paths: set[str] = set()
        self._out_paths: set[str] = set()
        self.return_path: str = "result/value"
        if data:
            for path, value in data.items():
                self.put_value(path, value)

    # -- core access -----------------------------------------------------------

    def put_value(self, path: str, value: Any) -> "ServiceContext":
        if _san._active is not None:
            _san._active.record(("ctx", id(self), path), "w",
                                f"ServiceContext {self.name!r} path {path!r}")
        self._data[_validate_path(path)] = value
        return self

    def get_value(self, path: str, default: Any = _MISSING) -> Any:
        if _san._active is not None:
            _san._active.record(("ctx", id(self), path), "r",
                                f"ServiceContext {self.name!r} path {path!r}")
        value = self._data.get(_validate_path(path), _MISSING)
        if value is _MISSING:
            if default is _MISSING:
                raise ContextError(f"no value at path {path!r} in context {self.name!r}")
            return default
        return value

    def has_path(self, path: str) -> bool:
        return path in self._data

    def remove(self, path: str) -> None:
        self._data.pop(path, None)
        self._in_paths.discard(path)
        self._out_paths.discard(path)

    def paths(self) -> list[str]:
        return sorted(self._data.keys())

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, path: str) -> bool:
        return self.has_path(path)

    def __iter__(self) -> Iterator[tuple]:
        return iter(sorted(self._data.items()))

    # -- direction markings --------------------------------------------------------

    def put_in_value(self, path: str, value: Any) -> "ServiceContext":
        self.put_value(path, value)
        self._in_paths.add(path)
        return self

    def put_out_value(self, path: str, value: Any = None) -> "ServiceContext":
        self.put_value(path, value)
        self._out_paths.add(path)
        return self

    def mark_in(self, path: str) -> None:
        if path not in self._data:
            raise ContextError(f"cannot mark unknown path {path!r}")
        self._in_paths.add(path)

    def mark_out(self, path: str) -> None:
        if path not in self._data:
            raise ContextError(f"cannot mark unknown path {path!r}")
        self._out_paths.add(path)

    def in_paths(self) -> list[str]:
        return sorted(self._in_paths)

    def out_paths(self) -> list[str]:
        return sorted(self._out_paths)

    # -- return value ----------------------------------------------------------------

    def set_return_path(self, path: str) -> "ServiceContext":
        self.return_path = _validate_path(path)
        return self

    def set_return_value(self, value: Any) -> "ServiceContext":
        return self.put_value(self.return_path, value)

    def get_return_value(self, default: Any = _MISSING) -> Any:
        return self.get_value(self.return_path, default)

    # -- structure ops ------------------------------------------------------------------

    def subcontext(self, prefix: str) -> "ServiceContext":
        """New context holding the subtree under ``prefix`` (paths relativized)."""
        prefix = _validate_path(prefix)
        sub = ServiceContext(name=f"{self.name}/{prefix}")
        anchor = prefix + "/"
        for path, value in self._data.items():
            if path == prefix:
                sub.put_value(prefix.rsplit("/", 1)[-1], value)
            elif path.startswith(anchor):
                sub.put_value(path[len(anchor):], value)
        return sub

    def merge(self, other: "ServiceContext", prefix: str = "") -> "ServiceContext":
        """Copy every association of ``other`` into this context, optionally
        under ``prefix``."""
        for path, value in other._data.items():
            target = f"{prefix}/{path}" if prefix else path
            self.put_value(target, value)
        for path in other._in_paths:
            self._in_paths.add(f"{prefix}/{path}" if prefix else path)
        for path in other._out_paths:
            self._out_paths.add(f"{prefix}/{path}" if prefix else path)
        return self

    def copy(self) -> "ServiceContext":
        return copy.deepcopy(self)

    def wire_size(self) -> int:
        # Sizes exactly as the generic __dict__ fallback charged before this
        # class grew __slots__ — the golden traces depend on these bytes.
        return 16 + estimate_size({
            "name": self.name,
            "_data": self._data,
            "_in_paths": self._in_paths,
            "_out_paths": self._out_paths,
            "return_path": self.return_path,
        })

    def as_dict(self) -> dict:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ServiceContext {self.name!r} {len(self._data)} paths>"
