"""SORCER exertion-oriented runtime (§IV.D of the paper).

Exertions (tasks/jobs) carry service contexts and signatures; ``exert``
binds them to providers discovered at runtime, forming the federation.
Providers implement the single remote ``service(exertion, txn)`` operation.
Jobber/Spacer are the rendezvous peers; the exertion space supports
transactional PULL dispatch.
"""

from .accessor import ServiceAccessor
from .context import ContextError, ServiceContext
from .exerter import Exerter
from .exertion import (
    Access,
    ControlContext,
    Exertion,
    ExertionStatus,
    Job,
    Pipe,
    Strategy,
    Task,
    TraceRecord,
)
from .jobber import Jobber
from .provider import ServiceProvider, join_service
from .security import AccessPolicy, AclPolicy, AllowAll, AuthorizationError
from .signature import Signature
from .space import Envelope, EnvelopeState, ExertionSpace, SpaceTemplate
from .spacer import SpaceWorker, Spacer
from .tasker import Tasker

__all__ = [
    "Access",
    "AccessPolicy",
    "AclPolicy",
    "AllowAll",
    "AuthorizationError",
    "ContextError",
    "ControlContext",
    "Envelope",
    "EnvelopeState",
    "Exerter",
    "Exertion",
    "ExertionSpace",
    "ExertionStatus",
    "Job",
    "Jobber",
    "Pipe",
    "ServiceAccessor",
    "ServiceContext",
    "ServiceProvider",
    "Signature",
    "SpaceTemplate",
    "SpaceWorker",
    "Spacer",
    "Strategy",
    "Task",
    "Tasker",
    "TraceRecord",
    "join_service",
]
