"""Signatures — what operation, on what kind of provider.

A signature names a remote *service type* (interface) and an operation
*selector*, optionally narrowed by provider name or attribute entries, plus
a provisioning flag: if no matching provider is on the network and
``provision`` is set, the runtime may ask Rio to instantiate one (the
paper's autonomic provisioning of sensor services).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..jini.entries import Name
from ..jini.template import ServiceTemplate

__all__ = ["Signature"]


@dataclass(frozen=True)
class Signature:
    """An operation bound to a provider *type*, not a provider instance."""

    service_type: str
    selector: str
    provider_name: Optional[str] = None
    #: Pin to one exact provider instance (composite providers bind their
    #: children by id so same-named services cannot be confused).
    service_id: Optional[str] = None
    attributes: tuple = ()
    #: Ask the provisioner for an instance when none is discoverable.
    provision: bool = False

    def template(self) -> ServiceTemplate:
        """The lookup template that finds providers for this signature."""
        attrs = tuple(self.attributes)
        if self.provider_name is not None:
            attrs = (Name(self.provider_name),) + attrs
        return ServiceTemplate(service_id=self.service_id,
                               types=(self.service_type,), attributes=attrs)

    def __str__(self) -> str:
        who = self.provider_name or "*"
        return f"{self.service_type}#{self.selector}@{who}"
