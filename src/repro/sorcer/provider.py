"""Service provider base — a servicer peer on the object-oriented overlay.

Every SORCER provider implements the single top-level ``Servicer`` operation

    service(exertion, txn_id) -> exertion

Operations declared in a provider's public interface are *not* remotely
callable; they are only reachable through an exertion naming them in a
signature — exactly the indirect-invocation rule of §IV.D. The base class
handles the exertion lifecycle (copy across the boundary, signature
validation, status/trace bookkeeping, exception capture) and the Jini join
protocol so concrete providers only register operations.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, Optional

from ..jini.entries import Entry, Name
from ..jini.join import JoinManager
from ..jini.template import ServiceItem
from ..net.host import Host
from ..net.rpc import RemoteRef, rpc_endpoint
from ..observability import (get_trace_parent, metrics_registry,
                             set_trace_parent, tracer_of)
from ..overload import Overloaded, mark_overloaded
from ..resilience import DEADLINE_PATH, Deadline
from ..sim import Interrupt, Resource
from .exertion import Exertion, ExertionStatus, Task, TraceRecord
from .security import AccessPolicy, AuthorizationError

__all__ = ["ServiceProvider", "join_service"]


def join_service(host: Host, ref: RemoteRef, service_id: str,
                 attributes: Iterable[Entry],
                 lease_duration: float = 30.0) -> JoinManager:
    """Register an already-exported object with all lookup services.

    Convenience for infrastructure services (transaction manager, mailbox,
    exertion space) that are not exertion providers but must appear in the
    registry — the Fig 2 service inventory.
    """
    item = ServiceItem(service_id=service_id, service=ref,
                       attributes=tuple(attributes))
    manager = JoinManager(host, item, lease_duration=lease_duration)
    manager.start()
    return manager


class ServiceProvider:
    """Base class for all SenSORCER/SORCER service providers."""

    #: Additional remote interface names contributed by subclasses.
    SERVICE_TYPES: tuple = ()

    def __init__(self, host: Host, name: str,
                 attributes: Iterable[Entry] = (),
                 service_types: Iterable[str] = (),
                 op_overhead: float = 0.0005,
                 lease_duration: float = 30.0,
                 max_concurrency: Optional[int] = None,
                 access_policy: Optional[AccessPolicy] = None,
                 admission=None):
        self.host = host
        self.env = host.env
        self.name = name
        self.service_id = host.network.ids.uuid()
        self.op_overhead = op_overhead
        # Collect types: Servicer + class-level + instance-level extras.
        types: list[str] = ["Servicer"]
        for klass in type(self).__mro__:
            for t in klass.__dict__.get("SERVICE_TYPES", ()):
                if t not in types:
                    types.append(t)
        for t in service_types:
            if t not in types:
                types.append(t)
        self.service_types = tuple(types)
        #: Instance-level remote types picked up by the RPC export.
        self.REMOTE_TYPES = self.service_types
        self._operations: dict[str, Callable] = {}
        self._extra_attributes = tuple(attributes)
        self._endpoint = rpc_endpoint(host)
        self.ref = self._endpoint.export(self, f"provider:{self.service_id}",
                                         methods=("service",))
        self._join: Optional[JoinManager] = None
        self._lease_duration = lease_duration
        #: Optional cap on in-flight exertions (a provider's thread pool).
        self._gate = (Resource(host.env, max_concurrency)
                      if max_concurrency else None)
        #: None = open access (the default lab configuration).
        self.access_policy = access_policy
        #: Optional :class:`~repro.overload.AdmissionController`. None (the
        #: default) means every request is admitted — existing labs keep
        #: their exact behaviour.
        self.admission = admission
        self.stats = {"served": 0, "failed": 0, "busy_time": 0.0}
        self.tracer = tracer_of(host.network)
        registry = metrics_registry(host.network)
        self._m_served = registry.counter("provider.served", provider=name)
        self._m_failed = registry.counter("provider.failed", provider=name)
        #: In-flight exertions, including those queued on the concurrency
        #: gate — the provider's instantaneous load/queue depth.
        self._m_inflight = registry.gauge("provider.inflight", provider=name)
        self._m_service_time = registry.histogram("provider.service_time",
                                                  provider=name)

    # -- configuration -----------------------------------------------------------

    def add_operation(self, selector: str, fn: Callable) -> None:
        """Register an operation; ``fn(context)`` returns the result value
        (or a generator that does). The result is stored at the context's
        return path."""
        if selector in self._operations:
            raise ValueError(f"operation {selector!r} already registered on {self.name}")
        self._operations[selector] = fn

    def operations(self) -> list[str]:
        return sorted(self._operations)

    def attributes(self) -> tuple:
        return (Name(self.name),) + self._extra_attributes

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "ServiceProvider":
        """Join the network: register with every discoverable LUS."""
        if self._join is None:
            item = ServiceItem(service_id=self.service_id, service=self.ref,
                               attributes=self.attributes())
            self._join = JoinManager(self.host, item,
                                     lease_duration=self._lease_duration)
            self._join.start()
        return self

    def update_attributes(self) -> None:
        """Push the current attribute set to the lookup services."""
        if self._join is not None:
            self._join.update_attributes(self.attributes())

    def destroy(self):
        """Gracefully leave the network (a generator — run as a process)."""
        if self._join is not None:
            yield from self._join.terminate()
            self._join = None
        self._endpoint.unexport(f"provider:{self.service_id}")

    # -- the Servicer operation ---------------------------------------------------------

    def service(self, exertion: Exertion, txn_id: Optional[int] = None):
        """Top-level remote operation; a generator run by the RPC layer.

        Opens the provider-side span of the hop, parented by the
        requestor's span id carried in the exertion context; our span id
        replaces it so nested exertions spawned while executing (a jobber
        running components, a CSP collecting children) parent here.
        """
        exertion = exertion.copy()  # serialization boundary
        span = self.tracer.start_span(
            f"serve:{exertion.name}", kind="serve", host=self.host.name,
            parent_id=get_trace_parent(exertion.context),
            provider=self.name)
        if span.span_id is not None:
            set_trace_parent(exertion.context, span.span_id)
        self._m_inflight.inc()
        grant = None
        admitted = False
        started = None
        try:
            if self.admission is not None:
                arrived = self.env.now
                try:
                    yield from self.admission.acquire(
                        exertion.principal, self._inherited_deadline(exertion))
                except Overloaded as exc:
                    return self._shed(exertion, exc, arrived, span)
                admitted = True
            if self._gate is not None:
                grant = self._gate.request()
                yield grant
            started = self.env.now
            exertion.status = ExertionStatus.RUNNING
            try:
                result = yield from self._execute(exertion, txn_id)
            except Interrupt:
                raise
            except Overloaded as exc:
                # A downstream hop shed this exertion's nested work. We are
                # alive and answering — propagate the rejection marker
                # without counting a provider failure here.
                return self._shed(exertion, exc, started, span)
            except Exception as exc:  # noqa: BLE001 - reported in the exertion
                exertion.report_exception(exc)
                self.stats["failed"] += 1
                self._m_failed.inc()
                self._trace(exertion, started, note=f"exception: {exc!r}")
                span.annotate("exception", error=repr(exc))
                span.end("failed")
                return exertion
            if exertion.status is ExertionStatus.FAILED:
                self.stats["failed"] += 1
                self._m_failed.inc()
                span.end("failed")
            else:
                exertion.status = ExertionStatus.DONE
                self.stats["served"] += 1
                self._m_served.inc()
                span.end("ok")
            self.stats["busy_time"] += self.env.now - started
            self._m_service_time.observe(self.env.now - started)
            self._trace(exertion, started)
            return result if isinstance(result, Exertion) else exertion
        finally:
            self._m_inflight.dec()
            span.end("error")  # no-op unless an unmodelled exception escaped
            if grant is not None:
                self._gate.release(grant)
            if admitted:
                service_time = (self.env.now - started
                                if started is not None else None)
                self.admission.release(service_time=service_time)

    def _inherited_deadline(self, exertion: Exertion) -> Optional[Deadline]:
        """The end-to-end deadline this exertion travels under: its own
        control deadline, or the expiry a parent hop forwarded in the
        service context."""
        if exertion.control.deadline is not None:
            return exertion.control.deadline
        expires_at = exertion.context.get_value(DEADLINE_PATH, None)
        if isinstance(expires_at, (int, float)):
            return Deadline(float(expires_at))
        return None

    def _shed(self, exertion: Exertion, exc: Overloaded, started: float,
              span) -> Exertion:
        """Fail the exertion as *shed*: the failed result carries the
        rejection marker, and neither ``provider.failed`` nor ``stats``
        count it — a shedding provider is healthy, not failing."""
        exertion.report_exception(exc)
        mark_overloaded(exertion.context, exc)
        self._trace(exertion, started, note=f"shed: {exc.reason}")
        span.annotate("overload_shed", reason=exc.reason,
                      tenant=exc.tenant)
        span.end("shed")
        return exertion

    def _execute(self, exertion: Exertion, txn_id: Optional[int]):
        """Default behaviour: dispatch a task's selector to an operation.

        Subclasses (Jobber, Spacer) override for composite exertions.
        """
        if not isinstance(exertion, Task):
            raise TypeError(
                f"{self.name} is a task peer; cannot execute {type(exertion).__name__}")
        signature = exertion.signature
        if signature.service_type not in self.service_types:
            raise TypeError(
                f"{self.name} does not implement {signature.service_type!r}")
        if (self.access_policy is not None
                and not self.access_policy.allows(exertion.principal,
                                                  signature.selector)):
            raise AuthorizationError(
                f"principal {exertion.principal!r} may not invoke "
                f"{signature.selector!r} on {self.name}")
        op = self._operations.get(signature.selector)
        if op is None:
            raise LookupError(
                f"{self.name} has no operation {signature.selector!r}")
        if self.op_overhead > 0:
            yield self.env.timeout(self.op_overhead)
        value = op(exertion.context)
        if inspect.isgenerator(value):
            value = yield self.env.process(value)
        if value is not None:
            exertion.context.set_return_value(value)
        return exertion

    def _trace(self, exertion: Exertion, started: float, note: str = "") -> None:
        exertion.trace.append(TraceRecord(
            exertion=exertion.name, provider=self.name, host=self.host.name,
            started_at=started, finished_at=self.env.now, note=note))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} on {self.host.name}>"
