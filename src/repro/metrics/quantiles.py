"""Quantile estimation over fixed-bucket histogram data.

One shared implementation for every consumer of histogram buckets — the
:class:`~repro.observability.registry.Histogram` instrument, the metrics
table renderer and the health model's per-window rollups — so "what is
p95?" has exactly one answer everywhere.

The estimator is the Prometheus ``histogram_quantile`` one: find the
bucket holding the target rank, then interpolate linearly inside it
(samples are assumed uniform within a bucket). Two boundary rules keep the
estimate finite and conservative:

* a rank landing in the implicit +inf bucket reports the highest finite
  bound (the data is *at least* that large; anything more is a guess);
* the first bucket interpolates from 0, so sub-bucket resolution does not
  invent negative values for latency-like metrics.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["quantile_from_buckets", "max_from_buckets"]


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          q: float, interpolate: bool = True) -> Optional[float]:
    """Estimate the ``q``-quantile of a cumulative-bucket histogram.

    ``bounds`` are the finite upper bucket bounds; ``counts`` has one extra
    trailing slot for the implicit +inf bucket. Returns ``None`` for an
    empty histogram. With ``interpolate=False`` the (historical) upper
    bucket bound is reported instead of the interpolated estimate.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if not total:
        return None
    target = q * total
    seen = 0
    for index, n in enumerate(counts):
        previous = seen
        seen += n
        if seen < target:
            continue
        if index >= len(bounds):
            # +inf bucket: the interpolating estimator stays finite and
            # conservative (the sample is at least the largest bound); the
            # plain bucket-bound form reports the bucket honestly as +inf.
            if interpolate and bounds:
                return bounds[-1]
            return float("inf")
        upper = bounds[index]
        if not interpolate:
            return upper
        lower = bounds[index - 1] if index > 0 else 0.0
        if n == 0:  # target == seen on an empty bucket boundary
            return upper
        fraction = (target - previous) / n
        return lower + (upper - lower) * fraction
    return float("inf")  # pragma: no cover - seen >= target always triggers


def max_from_buckets(bounds: Sequence[float],
                     counts: Sequence[int]) -> Optional[float]:
    """Upper bound of the highest occupied bucket (a conservative max).

    Samples in the +inf bucket report ``inf`` — the histogram genuinely
    does not know how large they were. ``None`` when empty.
    """
    for index in range(len(counts) - 1, -1, -1):
        if counts[index]:
            return bounds[index] if index < len(bounds) else float("inf")
    return None
