"""Measurement recording for experiments and benchmarks.

A :class:`Recorder` accumulates named samples and counters during a
simulation run and summarizes them (mean, percentiles, extrema) — the
numbers the benchmark harness prints as the paper-style result rows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

import numpy as np

__all__ = ["Recorder"]


class Recorder:
    """Named sample series + counters + timestamped event traces."""

    def __init__(self):
        self._series: dict[str, list[float]] = defaultdict(list)
        self._counters: dict[str, float] = defaultdict(float)
        #: Ordered (time, name, fields) tuples; fields is a sorted tuple of
        #: (key, value) pairs so two traces compare with plain ``==``.
        self._events: list[tuple] = []

    # -- recording ------------------------------------------------------------

    def record(self, name: str, value: float) -> None:
        self._series[name].append(float(value))

    def count(self, name: str, increment: float = 1.0) -> None:
        self._counters[name] += increment

    def event(self, name: str, time: float, **fields) -> None:
        """Append one trace entry (resilience events, benchmark markers)."""
        self._events.append((float(time), str(name),
                             tuple(sorted(fields.items()))))

    # -- reading ----------------------------------------------------------------

    def counter(self, name: str) -> float:
        # .get, not subscription: reading an unknown counter on the
        # defaultdict would insert the key and silently change the
        # recorder's ``==``-comparability (trace-based tests rely on it).
        return self._counters.get(name, 0.0)

    def samples(self, name: str) -> list[float]:
        return list(self._series.get(name, ()))

    def events(self, name: Optional[str] = None) -> list[tuple]:
        """The event trace, optionally filtered by event name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e[1] == name]

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def summary(self, name: str) -> dict:
        values = np.array(self._series.get(name, ()), dtype=float)
        if values.size == 0:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "min": None, "max": None, "total": 0.0}
        return {
            "count": int(values.size),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "min": float(values.min()),
            "max": float(values.max()),
            "total": float(values.sum()),
        }

    def merge(self, other: "Recorder") -> "Recorder":
        for name, values in other._series.items():
            self._series[name].extend(values)
        for name, value in other._counters.items():
            self._counters[name] += value
        self._events.extend(other._events)
        return self
