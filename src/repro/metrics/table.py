"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from typing import Optional, Sequence

from .quantiles import quantile_from_buckets

__all__ = ["render_table", "format_value", "render_traffic", "render_metrics"]


def format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells):
        out = []
        for index, cell in enumerate(cells):
            if index == 0:
                out.append(cell.ljust(widths[index]))
            else:
                out.append(cell.rjust(widths[index]))
        return "  ".join(out)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def render_metrics(snapshot: dict, title: str = "Metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` mapping as a table.

    Takes the plain snapshot dict (not the registry) so this module stays
    free of observability imports. Counters/gauges show their value;
    histograms show count, mean and the interpolated p95 estimate.
    """
    rows = []
    for name, entry in snapshot.items():
        kind, data = entry["type"], entry["data"]
        if kind == "counter":
            rows.append([name, kind, data, None, None])
        elif kind == "gauge":
            rows.append([name, kind, data["value"], data["max"], None])
        else:  # histogram
            mean = data["total"] / data["count"] if data["count"] else None
            p95 = quantile_from_buckets(data["buckets"], data["counts"], 0.95)
            rows.append([name, kind, data["count"], mean, p95])
    return render_table(["metric", "type", "value/count", "mean/max", "p95"],
                        rows, title=title)


def render_traffic(stats, title: str = "Network traffic by message kind") -> str:
    """Summarize a :class:`repro.net.TrafficStats` as a table.

    One row per message kind, sorted by total bytes descending, plus a
    totals row — what an operator would want from a switch counter.
    """
    rows = []
    for kind, slot in stats.by_kind.items():
        total = slot["payload_bytes"] + slot["header_bytes"]
        rows.append([kind, slot["messages"], slot["payload_bytes"],
                     slot["header_bytes"], total])
    rows.sort(key=lambda r: -r[4])
    rows.append(["TOTAL", stats.messages, stats.payload_bytes,
                 stats.header_bytes, stats.total_bytes])
    return render_table(
        ["kind", "messages", "payload B", "header B", "total B"],
        rows, title=title)
