"""Measurement recording and result-table rendering for experiments."""

from .quantiles import max_from_buckets, quantile_from_buckets
from .recorder import Recorder
from .table import format_value, render_metrics, render_table, render_traffic

__all__ = ["Recorder", "format_value", "max_from_buckets",
           "quantile_from_buckets", "render_metrics", "render_table",
           "render_traffic"]
