"""Measurement recording and result-table rendering for experiments."""

from .recorder import Recorder
from .table import format_value, render_metrics, render_table, render_traffic

__all__ = ["Recorder", "format_value", "render_metrics", "render_table",
           "render_traffic"]
