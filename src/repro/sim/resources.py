"""Shared-resource primitives built on the event kernel.

:class:`Store` is an unbounded-or-bounded FIFO of items with blocking ``get``
(used for mailboxes, work queues and the exertion space's waiter lists).
:class:`Resource` models a counted resource with blocking ``request`` (used
for cybernode capacity slots).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "StoreGet", "StorePut", "Resource", "ResourceRequest"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; triggers once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; triggers with a matching item."""

    __slots__ = ("predicate", "_store_ref")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]):
        super().__init__(store.env)
        self.predicate = predicate
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw this get request if it has not been satisfied yet."""
        if not self.triggered:
            try:
                self._store_ref._get_queue.remove(self)
            except (ValueError, AttributeError):
                pass


class Store:
    """FIFO item store with optionally filtered, blocking ``get``.

    ``get(predicate)`` returns an event that triggers with the *first* item
    (in insertion order) satisfying the predicate. Items that match no
    waiter stay queued.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        ev = StoreGet(self, predicate)
        ev._store_ref = self
        return ev

    def peek_all(self) -> list[Any]:
        """Non-blocking snapshot of currently stored items."""
        return list(self.items)

    def _dispatch(self) -> None:
        # Admit pending puts while there is room.
        while self._put_queue and len(self.items) < self.capacity:
            put = self._put_queue.popleft()
            self.items.append(put.item)
            put.succeed()
        # Satisfy waiting gets in arrival order.
        progressed = True
        while progressed:
            progressed = False
            for get in list(self._get_queue):
                match_idx = None
                for idx, item in enumerate(self.items):
                    if get.predicate is None or get.predicate(item):
                        match_idx = idx
                        break
                if match_idx is not None:
                    item = self.items[match_idx]
                    del self.items[match_idx]
                    self._get_queue.remove(get)
                    get.succeed(item)
                    progressed = True
            # Released capacity may admit more puts.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; triggers when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._dispatch()

    def release(self) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass


class Resource:
    """A counted resource: at most ``capacity`` outstanding grants."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[ResourceRequest] = []
        self._queue: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        return len(self.users)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted")
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.popleft()
            self.users.append(req)
            req.succeed()
