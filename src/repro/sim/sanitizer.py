"""Runtime race sanitizer — same-timestamp conflict detection.

The kernel's determinism contract orders same-``(time, priority)`` events
only by the scheduling sequence counter (``seq``). That makes every run
reproducible, but it also means a pair of *causally unrelated* events at an
identical ``(time, priority)`` whose effects conflict — both write the same
shared state, or one reads what the other writes — produce a result that
depends on nothing but the tie-breaker. Such code is deterministic by
accident: any refactor that perturbs scheduling order (batching, sharding,
a new subscriber) silently changes behaviour.

``Environment(sanitize=True)`` turns on this sanitizer. Instrumented shared
state (service contexts, the lookup registry, RPC export tables, metrics
instruments) reports per-event read/write sets through :func:`record`; when
the kernel finishes a tie group (all events at one ``(time, priority)``),
the sanitizer flags every conflicting pair of *concurrent* events as a
:class:`SanitizerViolation` carrying both event provenances.

Access kinds
------------
* ``"r"``  — read; conflicts with any write.
* ``"w"``  — order-sensitive write (last-writer-wins, e.g. ``Gauge.set``,
  ``ServiceContext.put_value``); conflicts with everything.
* ``"cw"`` — commutative write (counter increments, histogram observations);
  conflicts with reads and plain writes but *not* with other commutative
  writes, whose order cannot matter.

Causality suppression
---------------------
An event scheduled while event *A* is executing can never run before *A*,
whatever the tie-breaker does, so conflicts along a scheduling ancestry
chain are not races. The kernel reports each scheduled event's parent via
:meth:`RaceSanitizer.on_schedule`; conflicting pairs where one event is a
scheduling ancestor of the other are suppressed.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["RaceSanitizer", "SanitizerViolation", "record"]

#: The sanitizer of the environment currently stepping, or ``None``.
#: Instrumented shared state guards its recording on this being set, which
#: keeps the disabled-mode overhead to one module-attribute load per access.
_active: Optional["RaceSanitizer"] = None


class SanitizerViolation(AssertionError):
    """Two same-``(time, priority)`` events raced on shared state.

    Carries enough provenance to identify both sides: the simulated time
    and priority of the tie group, the human-readable label of the state
    that was touched, and for each event its scheduling sequence number,
    name and the access kinds it performed.
    """

    def __init__(self, time: float, priority: int, label: str,
                 first: tuple, second: tuple):
        self.time = time
        self.priority = priority
        self.label = label
        #: ``(seq, event_name, kinds)`` for each conflicting event.
        self.first = first
        self.second = second
        super().__init__(
            f"tie-break race at t={time:g} (priority {priority}) on {label}: "
            f"event #{first[0]} {first[1]!r} ({'/'.join(sorted(first[2]))}) "
            f"vs event #{second[0]} {second[1]!r} "
            f"({'/'.join(sorted(second[2]))}) — outcome depends only on the "
            f"scheduling tie-breaker")


def record(key: Any, kind: str, label: str) -> None:
    """Report one shared-state access to the active sanitizer (if any).

    Hot paths inline the ``_active is None`` guard instead of paying a
    call; this helper is for call sites where an extra function call is
    immaterial.
    """
    if _active is not None:
        _active.record(key, kind, label)


def _conflict(kinds_a: set, kinds_b: set) -> bool:
    """Do two events' access-kind sets on one key conflict?

    A plain write conflicts with anything; a read conflicts with either
    write kind; two commutative writes do not conflict with each other.
    """
    if "w" in kinds_a or "w" in kinds_b:
        return True
    if "r" in kinds_a and "cw" in kinds_b:
        return True
    if "cw" in kinds_a and "r" in kinds_b:
        return True
    return False


def _event_name(event: Any) -> str:
    name = getattr(event, "name", None)
    if name:
        return f"{type(event).__name__}:{name}"
    return type(event).__name__


class RaceSanitizer:
    """Collects per-event access sets and analyses each tie group.

    ``mode`` is ``"raise"`` (default: the first violation is raised out of
    :meth:`Environment.step` / :meth:`Environment.run`) or ``"record"``
    (violations accumulate in :attr:`violations` and the run continues).
    """

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.violations: list[SanitizerViolation] = []
        #: seq -> seq of the event that was executing when it was scheduled.
        self._parent: dict[int, int] = {}
        self._current: Optional[int] = None
        self._group_key: Optional[tuple] = None
        #: key -> list of (seq, kind) accesses within the current tie group.
        self._accesses: dict[Any, list[tuple]] = {}
        self._labels: dict[Any, str] = {}
        #: seq -> event name, for the current tie group's members.
        self._names: dict[int, str] = {}

    # -- kernel hooks ---------------------------------------------------------

    def on_schedule(self, seq: int, event: Any) -> None:
        """The kernel scheduled ``event`` under sequence number ``seq``."""
        if self._current is not None:
            self._parent[seq] = self._current

    def begin_event(self, when: float, priority: int, seq: int,
                    event: Any) -> None:
        """The kernel is about to process one popped event occurrence."""
        key = (when, priority)
        if key != self._group_key:
            self.flush()
            self._group_key = key
        self._current = seq
        self._names[seq] = _event_name(event)

    def record(self, key: Any, kind: str, label: str) -> None:
        """One access to the shared state identified by ``key``."""
        if self._current is None:
            return  # outside event processing (setup code): not a tie hazard
        self._accesses.setdefault(key, []).append((self._current, kind))
        if key not in self._labels:
            self._labels[key] = label

    # -- analysis -------------------------------------------------------------

    def flush(self) -> None:
        """Analyse and discard the current tie group; raise on conflicts
        (in ``raise`` mode)."""
        accesses, self._accesses = self._accesses, {}
        labels, self._labels = self._labels, {}
        names, self._names = self._names, {}
        group_key, self._group_key = self._group_key, None
        self._current = None
        if group_key is None:
            return
        when, priority = group_key
        for key, entries in accesses.items():
            kinds_of: dict[int, set] = {}
            for seq, kind in entries:
                kinds_of.setdefault(seq, set()).add(kind)
            if len(kinds_of) < 2:
                continue
            seqs = sorted(kinds_of)
            for i, a in enumerate(seqs):
                for b in seqs[i + 1:]:
                    if not _conflict(kinds_of[a], kinds_of[b]):
                        continue
                    if self._is_ancestor(a, b):
                        continue
                    violation = SanitizerViolation(
                        when, priority, labels.get(key, repr(key)),
                        (a, names.get(a, "?"), frozenset(kinds_of[a])),
                        (b, names.get(b, "?"), frozenset(kinds_of[b])))
                    self.violations.append(violation)
                    if self.mode == "raise":
                        raise violation

    def _is_ancestor(self, ancestor_seq: int, seq: int) -> bool:
        """Is ``ancestor_seq`` on ``seq``'s scheduling-parent chain?

        Parents always carry smaller sequence numbers than their children
        (the parent occurrence was pushed before it executed, and it
        executed before pushing the child), so the walk is strictly
        decreasing and can stop early.
        """
        node = seq
        while node is not None and node > ancestor_seq:
            node = self._parent.get(node)
        return node == ancestor_seq
