"""Kernel schedulers — the pending-event set behind :class:`Environment`.

The kernel's ordering contract is a strict total order over scheduled
occurrences keyed by ``(time, priority, tie, seq)``:

* ``time`` — simulated seconds (floats, never negative deltas);
* ``priority`` — URGENT < NORMAL < LOW (any int works);
* ``tie`` — 0.0 normally, a seeded uniform draw under the tie-break
  shuffle harness;
* ``seq`` — the monotonically increasing scheduling counter, unique per
  occurrence, which makes the order total.

Two implementations honour that contract:

:class:`HeapScheduler`
    The reference: a binary heap of ``(time, priority, tie, seq, event)``
    tuples — exactly the pre-refactor kernel structure. O(log n) per
    operation with n = *all* pending occurrences, including the large
    backlog of watchdog timeouts and sampling timers a 10k-sensor run
    keeps in flight.

:class:`CalendarQueue`
    A bucketed calendar queue (Brown 1988) with *tie cells*. Buckets
    partition time into integer "years" of ``width`` seconds; each
    bucket holds a short list of cells sorted by ``(time, priority,
    tie)`` (descending, so the earliest cell sits at the tail where
    ``list.pop()`` is O(1)), and each cell is a FIFO of same-key
    occurrences. Push and pop are amortized O(1): a push binary-searches
    one *bucket* (average occupancy is kept at O(1) cells by
    doubling/halving the bucket count), and the common same-instant
    burst — a CSP fanning a query out to 16k children schedules 16k
    occurrences at one ``(time, priority)`` — is a single cell with O(1)
    appends, where the heap pays O(log n) tuple comparisons per event.

    Each cell stores its year index (``int(time // width)``) at push
    time and the pop scan compares *years*, not float bucket
    boundaries: the time→year map is monotone (IEEE division is
    monotone), so ordering is exact even where ``t / width`` loses
    precision — rounding can only shift which year a time lands in,
    never invert two times, and the scan accepts a bucket head only
    once the lap reaches that head's own year.

Both support :meth:`cancel` (lazy tombstones, the shape a batched timer
wheel needs) and both produce byte-identical pop sequences for any
program — the property suite in ``tests/sim/test_calendar_queue.py``
drives random schedule programs through the pair and compares.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

__all__ = ["CalendarQueue", "HeapScheduler", "SCHEDULERS", "make_scheduler"]

_INF = float("inf")


class HeapScheduler:
    """Reference binary-heap scheduler (the pre-refactor kernel queue)."""

    __slots__ = ("_heap", "_dead", "pushes", "pops", "cancels")

    kind = "heap"

    def __init__(self):
        self._heap: list[tuple] = []
        self._dead: set[int] = set()
        #: Lifetime operation counters — the flight recorder reads these;
        #: they never feed back into scheduling.
        self.pushes = 0
        self.pops = 0
        self.cancels = 0

    @property
    def size(self) -> int:
        return len(self._heap) - len(self._dead)

    def __len__(self) -> int:
        return self.size

    def push(self, time: float, priority: int, tie: float, seq: int,
             event: Any) -> None:
        self.pushes += 1
        heapq.heappush(self._heap, (time, priority, tie, seq, event))

    def pop(self) -> tuple:
        """Remove and return the least ``(time, priority, tie, seq, event)``."""
        heap = self._heap
        dead = self._dead
        while heap:
            entry = heapq.heappop(heap)
            if dead and entry[3] in dead:
                dead.discard(entry[3])
                continue
            self.pops += 1
            return entry
        raise IndexError("pop from empty scheduler")

    def peek_time(self) -> float:
        """Time of the next occurrence, or ``inf`` when empty."""
        heap = self._heap
        dead = self._dead
        while heap:
            if dead and heap[0][3] in dead:
                dead.discard(heapq.heappop(heap)[3])
                continue
            return heap[0][0]
        return _INF

    def cancel(self, seq: int) -> None:
        """Tombstone the occurrence scheduled under ``seq`` (lazy removal)."""
        self.cancels += 1
        self._dead.add(seq)

    def entries(self) -> list:
        """Every live pending occurrence in pop order, *without* popping.

        Strictly non-mutating — no counters move, no tombstones are
        consumed — so the snapshot capture path can enumerate the pending
        set without perturbing the ``kernel.scheduler.*`` gauges the
        health beat publishes (DESIGN §12/§14).
        """
        dead = self._dead
        return [entry for entry in sorted(self._heap)
                if entry[3] not in dead]

    def drain(self) -> list:
        """Remove and return every live occurrence in pop order.

        Part of the scheduler-neutral snapshot contract: ``drain()`` on
        one scheduler kind followed by ``refill()`` on the other must
        yield the identical pop sequence (the round-trip suite proves
        it). Tombstones are discarded with their occurrences.
        """
        entries = self.entries()
        self._heap.clear()
        self._dead.clear()
        return entries

    def refill(self, entries) -> None:
        """Bulk-load occurrences (the inverse of :meth:`drain`).

        Counts as ordinary pushes for the operation counters; ordering
        honours the same ``(time, priority, tie, seq)`` total order.
        """
        for time, priority, tie, seq, event in entries:
            self.push(time, priority, tie, seq, event)

    def stats(self) -> dict:
        """Deterministic internals snapshot (operation totals + pending).

        Wall-clock-free and read-only — but *not* tie-break-invariant for
        the calendar (shuffled ties split cells differently), so this never
        feeds canonical sim-side outputs. See DESIGN §12.
        """
        return {"kind": self.kind, "pending": self.size,
                "pushes": self.pushes, "pops": self.pops,
                "cancels": self.cancels}


# Cell layout: [time, priority, tie, year, fifo] where fifo is a deque of
# (seq, event) in push order — FIFO within one (time, priority, tie) key.
_TIME, _PRIO, _TIE, _YEAR, _FIFO = range(5)


class CalendarQueue:
    """Bucketed calendar-queue scheduler with FIFO tie cells."""

    __slots__ = ("_buckets", "_nbuckets", "_width", "_size", "_year",
                 "_dead", "_peek_cache", "_pushes", "pushes", "pops",
                 "cancels", "grows", "shrinks", "heals", "occupancy_hw",
                 "sparse_laps")

    kind = "calendar"

    #: Bucket-count bounds: halving stops at MIN, growth is unbounded.
    MIN_BUCKETS = 8
    #: Cells in one bucket before a same-count resize re-estimates the
    #: width. The width is only ever computed at resize time, and a resize
    #: can fire while the pending set is degenerate (service spawn leaves
    #: every initializer at t=0, so the estimate collapses to 1.0); once
    #: steady-state timers spread out, nothing grows the size again and
    #: every event lands in a handful of buckets whose O(len) inserts
    #: dominate. Healing on occupancy keeps buckets at O(1) cells.
    HEAL_OCCUPANCY = 32

    def __init__(self):
        self._nbuckets = self.MIN_BUCKETS
        self._width = 1.0
        self._buckets: list[list] = [[] for _ in range(self._nbuckets)]
        self._size = 0
        #: Calendar position: the year of the last popped occurrence.
        self._year = 0
        self._dead: set[int] = set()
        #: (bucket_index, year) located by the last peek, consumed by the
        #: next pop; invalidated by any push or cancel.
        self._peek_cache: Optional[tuple] = None
        #: Pushes since the last resize — the healing cooldown, so a
        #: bucket the width genuinely cannot split (thousands of distinct
        #: ties at one instant) triggers at most one resize per
        #: ``nbuckets`` pushes instead of thrashing on every push.
        self._pushes = 0
        #: Lifetime internals counters (read by the flight recorder and the
        #: kernel gauges; never consulted by the scheduling logic itself).
        self.pushes = 0
        self.pops = 0
        self.cancels = 0
        self.grows = 0      # size-doubling resizes
        self.shrinks = 0    # size-halving resizes
        self.heals = 0      # same-count width re-estimations
        self.occupancy_hw = 0  # deepest bucket (in cells) ever seen
        self.sparse_laps = 0   # fruitless laps that fell back to min-scan

    @property
    def size(self) -> int:
        return self._size - len(self._dead)

    def __len__(self) -> int:
        return self.size

    # -- scheduling -----------------------------------------------------------

    def push(self, time: float, priority: int, tie: float, seq: int,
             event: Any) -> None:
        self.pushes += 1
        cache = self._peek_cache
        if cache is not None:
            # The located head stays the minimum unless this push lands
            # strictly earlier: pushes never remove cells, an equal key
            # joins the head cell's FIFO, and a later key sorts behind it.
            # Keeping the cache makes the recurring-timer cycle (peek →
            # pop → push next tick) locate-free.
            head = self._buckets[cache[0]][-1]
            ht = head[0]
            if time < ht or (time == ht
                             and (priority < head[1]
                                  or (priority == head[1]
                                      and tie < head[2]))):
                self._peek_cache = None
        year = int(time // self._width)
        if self._size == 0:
            # Empty queue: re-aim the calendar so the next scan starts at
            # this occurrence instead of lapping from a stale position.
            self._year = year
        elif year < self._year:
            # Keep the invariant "position <= every pending year": pops
            # advance the position to the popped year, but a push can land
            # earlier than other pending work (time >= now, not >= their
            # times), so the scan must back up to see it.
            self._year = year
        bucket = self._buckets[year % self._nbuckets]
        # Binary search the cell position: descending by (time, priority,
        # tie), earliest at the tail. Field-by-field compares — this runs
        # once per scheduled occurrence, and building two key tuples per
        # probe costs more than the probe itself.
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) >> 1
            cell = bucket[mid]
            ct = cell[0]
            if ct > time or (ct == time
                             and (cell[1] > priority
                                  or (cell[1] == priority
                                      and cell[2] > tie))):
                lo = mid + 1
            else:
                hi = mid
        if lo < len(bucket):
            cell = bucket[lo]
            if cell[0] == time and cell[1] == priority and cell[2] == tie:
                cell[4].append((seq, event))
                self._size += 1
                return
        bucket.insert(lo, [time, priority, tie, year,
                           deque(((seq, event),))])
        self._size += 1
        self._pushes += 1
        depth = len(bucket)
        if depth > self.occupancy_hw:
            self.occupancy_hw = depth
        if self._size > 2 * self._nbuckets:
            self.grows += 1
            self._resize(2 * self._nbuckets)
        elif (depth > self.HEAL_OCCUPANCY
                and self._pushes >= self._nbuckets
                and bucket[0][0] != bucket[-1][0]):
            # Overlong bucket spanning distinct times: the width is stale
            # (see HEAL_OCCUPANCY) — re-estimate it over the live set.
            self.heals += 1
            self._resize(self._nbuckets)

    def cancel(self, seq: int) -> None:
        """Tombstone the occurrence scheduled under ``seq`` (lazy removal)."""
        self.cancels += 1
        self._dead.add(seq)
        self._peek_cache = None

    def entries(self) -> list:
        """Every live pending occurrence in pop order, *without* popping.

        Strictly non-mutating (no counters, no tombstone consumption, no
        peek-cache invalidation): the snapshot capture path enumerates
        the pending set through this, and capture must not move the
        ``kernel.scheduler.*`` gauges the health beat publishes.
        """
        dead = self._dead
        out = []
        for bucket in self._buckets:
            for cell in bucket:
                time, priority, tie = cell[0], cell[1], cell[2]
                for seq, event in cell[4]:
                    if seq in dead:
                        continue
                    out.append((time, priority, tie, seq, event))
        out.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
        return out

    def drain(self) -> list:
        """Remove and return every live occurrence in pop order.

        The scheduler-neutral snapshot contract: ``drain()`` from either
        scheduler kind feeds ``refill()`` on either kind and the pop
        sequence is identical (see tests/sim/test_drain_refill.py).
        Tombstones are discarded with their occurrences.
        """
        entries = self.entries()
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._size = 0
        self._dead.clear()
        self._peek_cache = None
        return entries

    def refill(self, entries) -> None:
        """Bulk-load occurrences (the inverse of :meth:`drain`).

        Counts as ordinary pushes for the operation counters; the
        calendar re-estimates its width through the usual resize path.
        """
        for time, priority, tie, seq, event in entries:
            self.push(time, priority, tie, seq, event)

    # -- retrieval ------------------------------------------------------------

    def pop(self) -> tuple:
        """Remove and return the least ``(time, priority, tie, seq, event)``."""
        dead = self._dead
        while True:
            located = self._peek_cache or self._locate()
            self._peek_cache = None
            if located is None:
                raise IndexError("pop from empty scheduler")
            index, year = located
            bucket = self._buckets[index]
            cell = bucket[-1]
            fifo = cell[4]
            seq, event = fifo.popleft()
            if not fifo:
                bucket.pop()
            self._size -= 1
            self._year = year
            # Re-arm the cache when the next head is already known: every
            # year-``year`` occurrence lives in this bucket (one bucket per
            # year), so a tail cell still in ``year`` is the global min and
            # the next pop/peek skips the lap scan entirely.
            if bucket and bucket[-1][3] == year:
                self._peek_cache = (index, year)
            if dead and seq in dead:
                dead.discard(seq)
                continue
            if (self._size < self._nbuckets // 2
                    and self._nbuckets > self.MIN_BUCKETS):
                self.shrinks += 1
                self._resize(self._nbuckets // 2)
            self.pops += 1
            return (cell[0], cell[1], cell[2], seq, event)

    def peek_time(self) -> float:
        """Time of the next occurrence, or ``inf`` when empty."""
        while True:
            located = self._peek_cache or self._locate()
            if located is None:
                return _INF
            index, _year = located
            cell = self._buckets[index][-1]
            dead = self._dead
            if dead:
                # Drop tombstoned occurrences off the cell head so the
                # reported time is a live one.
                fifo = cell[4]
                while fifo and fifo[0][0] in dead:
                    dead.discard(fifo.popleft()[0])
                    self._size -= 1
                if not fifo:
                    self._buckets[index].pop()
                    self._peek_cache = None
                    continue
            self._peek_cache = located
            return cell[0]

    # -- internals ------------------------------------------------------------

    def _locate(self) -> Optional[tuple]:
        """Find the bucket holding the next occurrence.

        Returns ``(bucket_index, year)`` — the calendar position the pop
        should advance to — or ``None`` when empty. A bucket head is
        accepted only once the lap's year has reached the head's own
        stored year; after one fruitless lap the scan falls back to a
        direct min-of-heads search and jumps the calendar there (the
        sparse-queue jump of the classic algorithm).
        """
        if self._size == 0:
            return None
        buckets = self._buckets
        n = self._nbuckets
        year = self._year
        for _ in range(n):
            bucket = buckets[year % n]
            if bucket and bucket[-1][3] <= year:
                return (year % n, year)
            year += 1
        # Sparse queue: nothing within the next full calendar lap. Jump
        # straight to the earliest head by full key.
        self.sparse_laps += 1
        best = None
        best_index = -1
        for j in range(n):
            bucket = buckets[j]
            if bucket:
                head = bucket[-1]
                key = (head[0], head[1], head[2])
                if best is None or key < best:
                    best = key
                    best_index = j
        head = buckets[best_index][-1]
        return (best_index, head[3])

    def _resize(self, nbuckets: int) -> None:
        cells = [cell for bucket in self._buckets for cell in bucket]
        self._width = self._estimate_width(cells)
        self._nbuckets = nbuckets
        buckets: list[list] = [[] for _ in range(nbuckets)]
        width = self._width
        min_year = None
        for cell in cells:
            year = int(cell[0] // width)
            cell[3] = year
            buckets[year % nbuckets].append(cell)
            if min_year is None or year < min_year:
                min_year = year
        for bucket in buckets:
            bucket.sort(key=_cell_sort_key)
        self._buckets = buckets
        self._peek_cache = None
        self._pushes = 0
        # Re-aim the calendar at the earliest pending cell.
        self._year = min_year if min_year is not None else 0

    def stats(self) -> dict:
        """Deterministic internals snapshot (operation totals + shape).

        Wall-clock-free and read-only, but tie-break-*variant*: shuffled
        ties split same-instant bursts into distinct cells, changing
        occupancy, heals and resizes — so this never feeds canonical
        sim-side outputs (status --json, chaos verdicts). See DESIGN §12.
        """
        return {"kind": self.kind, "pending": self.size,
                "pushes": self.pushes, "pops": self.pops,
                "cancels": self.cancels,
                "resizes": self.grows + self.shrinks + self.heals,
                "grows": self.grows, "shrinks": self.shrinks,
                "heals": self.heals, "occupancy_hw": self.occupancy_hw,
                "sparse_laps": self.sparse_laps,
                "nbuckets": self._nbuckets, "width": self._width}

    @staticmethod
    def _estimate_width(cells: list) -> float:
        """Bucket width from the spread of distinct pending cell times.

        Aims for ~one calendar year between adjacent distinct event
        times so an average bucket holds O(1) cells. Clamped away from
        zero so same-instant storms (every cell at one time) cannot
        collapse the calendar.
        """
        times = sorted({cell[0] for cell in cells})
        if len(times) < 2:
            return 1.0
        span = times[-1] - times[0]
        if span <= 0.0:
            return 1.0
        return max(span / (len(times) - 1), 1e-9)


def _cell_sort_key(cell):
    return (-cell[0], -cell[1], -cell[2])


#: Registry used by :class:`~repro.sim.core.Environment`.
SCHEDULERS = {
    "calendar": CalendarQueue,
    "heap": HeapScheduler,
}


def make_scheduler(kind: str):
    try:
        return SCHEDULERS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown kernel scheduler {kind!r}; expected one of "
            f"{sorted(SCHEDULERS)}") from None
