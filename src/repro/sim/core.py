"""Discrete-event simulation kernel.

A small, deterministic, SimPy-like engine. Everything in the SenSORCER
reproduction — the network, Jini discovery, Rio provisioning, the SORCER
exertion runtime and the sensor devices — runs as processes inside one
:class:`Environment`.

Design notes
------------
* Time is a float in simulated seconds. There is no wall clock anywhere.
* Events are scheduled on a pluggable scheduler (see
  :mod:`repro.sim.calendar`) keyed by ``(time, priority, tie, seq)`` where
  ``seq`` is a monotonically increasing counter, which makes the execution
  order fully deterministic. The default is a bucketed calendar queue with
  amortized O(1) push/pop; ``scheduler="heap"`` (or the
  ``REPRO_KERNEL_SCHEDULER`` environment variable) selects the reference
  binary heap, which produces a byte-identical event order.
* A :class:`Process` wraps a generator. The generator yields :class:`Event`
  objects; when a yielded event triggers, the process resumes with the
  event's value (or the event's exception is thrown into the generator).
* Failed events that nobody waits on are raised out of :meth:`Environment.run`
  so tests surface unhandled simulation errors instead of silently
  swallowing them.
"""

from __future__ import annotations

import os
import random as _random
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from . import sanitizer as _san
from .calendar import make_scheduler
from .sanitizer import RaceSanitizer, SanitizerViolation  # noqa: F401 - re-export

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "RaceSanitizer",
    "SanitizerViolation",
    "SimulationError",
    "StopSimulation",
]

#: Environment variable honoured by :class:`Environment` when no explicit
#: ``tie_break_seed`` is passed — lets a test run (or CI job) shuffle every
#: scenario it builds without threading a parameter through the builders.
SHUFFLE_SEED_ENV = "REPRO_SHUFFLE_SEED"

#: Environment variable selecting the kernel scheduler ("calendar" or
#: "heap") when no explicit ``scheduler=`` is passed. Used by the
#: equivalence suite to run whole scenarios on the reference heap.
KERNEL_SCHEDULER_ENV = "REPRO_KERNEL_SCHEDULER"

#: Default kernel scheduler.
DEFAULT_SCHEDULER = "calendar"

#: Priority for "urgent" events (used internally for interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1
#: Priority for observers that must see an instant *after* it settles
#: (management-plane beats). Priority ordering is preserved under tie-break
#: shuffling — only same-priority peers get reordered — so a LOW timeout is
#: a deterministic "run me last at this timestamp" request.
LOW = 2


class SimulationError(Exception):
    """Raised when the simulation itself is misused (not a modelled failure)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries an arbitrary, caller-supplied reason object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


#: Sentinel distinguishing "not yet set" from a ``None`` event value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (succeed/fail called, callbacks scheduled) and *processed* (callbacks
    ran). Its value or exception is immutable once triggered.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set True when some process observed (yielded on) this event's
        #: failure, so the environment does not re-raise it.
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    # -- plumbing ----------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._ok is False and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, priority, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout cannot be retriggered")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout cannot be retriggered")


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """Wraps a generator as a process; the process *is* an event that
    triggers with the generator's return value when it finishes."""

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None while running).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self.name} cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env._schedule(interrupt_ev, URGENT)

    def _resume(self, event: Event) -> None:
        # Ignore stale wakeups: after an interrupt, the original target may
        # still trigger later; by then self._target no longer references it.
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        if (self._target is not None and event is not self._target
                and not isinstance(event._value, Interrupt)):
            if not event._ok:
                event._defused = True
            return
        # Detach from the event we were waiting on.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self.env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as exc:
            self._target = None
            self.env._active_process = None
            self._ok = True
            self._value = exc.value
            self.env._schedule(self, NORMAL)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env._schedule(self, NORMAL)
            return
        self.env._active_process = None
        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}")
            self._generator.throw(error)
            return
        self._target = next_event
        if next_event.callbacks is not None:
            next_event.callbacks.append(self._resume)
        else:
            # Already processed: resume immediately (respecting outcome).
            resume_ev = Event(self.env)
            resume_ev._ok = next_event._ok
            resume_ev._value = next_event._value
            if not next_event._ok:
                resume_ev._defused = True
            resume_ev.callbacks.append(self._resume)
            self._target = resume_ev
            self.env._schedule(resume_ev, URGENT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} alive={self.is_alive}>"


class Condition(Event):
    """Triggers based on the outcomes of several child events."""

    __slots__ = ("events", "_evaluate", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]):
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._evaluate(len(self.events), self._done):
            self.succeed([ev._value for ev in self.events if ev.triggered])


class AllOf(Condition):
    """Triggers when *all* child events have triggered; fails on first failure."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda total, done: done == total)


class AnyOf(Condition):
    """Triggers as soon as *any* child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda total, done: done >= 1)


class Environment:
    """The simulation environment: clock plus event queue.

    ``sanitize`` enables the same-timestamp race sanitizer (see
    :mod:`repro.sim.sanitizer`); pass ``True`` for raise-on-violation or
    ``"record"`` to accumulate violations in ``env.sanitizer.violations``.

    ``tie_break_seed`` enables the tie-break shuffle harness: ordering among
    events at identical ``(time, priority)`` is randomized by a
    seeded generator instead of strict scheduling order, while causal order
    (an event scheduled during another's execution runs after it) is
    preserved. Tests use it to prove results do not depend on the
    tie-breaker. When ``None``, the ``REPRO_SHUFFLE_SEED`` environment
    variable is consulted so whole suites can be shuffled externally.

    ``scheduler`` selects the pending-event structure: ``"calendar"`` (the
    default, amortized O(1)) or ``"heap"`` (the reference binary heap).
    Both honour the same ``(time, priority, tie, seq)`` total order, so
    every run is byte-identical across the two. When ``None``, the
    ``REPRO_KERNEL_SCHEDULER`` environment variable is consulted.
    """

    def __init__(self, initial_time: float = 0.0,
                 sanitize: bool | str = False,
                 tie_break_seed: Optional[int] = None,
                 scheduler: Optional[str] = None):
        self._now = float(initial_time)
        if scheduler is None:
            scheduler = os.environ.get(KERNEL_SCHEDULER_ENV) or DEFAULT_SCHEDULER
        self._scheduler = make_scheduler(scheduler)
        self._seq = count()
        self._active_process: Optional[Process] = None
        if tie_break_seed is None:
            from_env = os.environ.get(SHUFFLE_SEED_ENV)
            if from_env:
                tie_break_seed = int(from_env)
        self.tie_break_seed = tie_break_seed
        # The tie-break stream deliberately sits outside the substream
        # scheme: it must not perturb (or be perturbed by) model RNG.
        self._tie_rng = (_random.Random(tie_break_seed)  # repro: allow[DET005]
                         if tie_break_seed is not None else None)
        self.sanitizer: Optional[RaceSanitizer] = None
        if sanitize:
            mode = sanitize if isinstance(sanitize, str) else "raise"
            self.sanitizer = RaceSanitizer(mode=mode)
        #: Wall-clock flight recorder hook (see
        #: :mod:`repro.observability.profile`). ``None`` keeps :meth:`step`
        #: on the branch-free fast path; when set, the recorder's
        #: ``enter``/``exit`` pair brackets every event's callbacks. The
        #: kernel itself never reads a wall clock — the recorder owns it —
        #: and the recorder only observes, so simulation state and event
        #: order are bit-identical with or without it.
        self._profiler = None
        #: Sampled-mode countdown to the next profiler stamp; owned by
        #: :meth:`step` (see there), reset by the recorder's ``attach``.
        self._prof_countdown = 1

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                priority: int = NORMAL) -> Timeout:
        return Timeout(self, delay, value, priority)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / execution ----------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        seq = next(self._seq)
        tie = 0.0 if self._tie_rng is None else self._tie_rng.random()
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(seq, event)
        self._scheduler.push(self._now + delay, priority, tie, seq, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._scheduler.peek_time()

    def scheduler_stats(self) -> dict:
        """The pending-event structure's internals snapshot (operation
        totals, occupancy shape). Read-only and wall-clock-free; see
        the scheduler ``stats()`` docstrings for the determinism caveat."""
        return self._scheduler.stats()

    def pending(self) -> list:
        """Every live pending occurrence as ``(time, priority, tie, seq,
        event)`` tuples in pop order, without disturbing the queue. The
        snapshot capture enumerates the event set through this (both
        scheduler kinds implement the same non-mutating ``entries()``)."""
        return self._scheduler.entries()

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._scheduler.size:
            raise SimulationError("nothing scheduled")
        when, prio, _tie, seq, event = self._scheduler.pop()
        self._now = when
        profiler = self._profiler
        if self.sanitizer is None:
            if profiler is None:
                event._run_callbacks()
                return
            if profiler.exit is None:
                # Observe-only recorder (sampled mode). The kernel owns
                # the countdown so the off-sample path is pure integer
                # arithmetic — no hook call, no bracketing. The counter
                # is deterministic state (no wall clock enters the
                # kernel) and exists only while a recorder is attached.
                countdown = self._prof_countdown - 1
                if countdown:
                    self._prof_countdown = countdown
                    event._run_callbacks()
                    return
                self._prof_countdown = profiler.period
                profiler.enter(event)
                event._run_callbacks()
                return
            profiler.enter(event)
            try:
                event._run_callbacks()
            finally:
                profiler.exit(event)
            return
        # Sanitize mode: make this environment's sanitizer visible to
        # instrumented shared state for the duration of the callbacks.
        self.sanitizer.begin_event(when, prio, seq, event)
        previous = _san._active
        _san._active = self.sanitizer
        bracketed = None
        if profiler is not None:
            if profiler.exit is None:
                countdown = self._prof_countdown - 1
                if countdown:
                    self._prof_countdown = countdown
                else:
                    self._prof_countdown = profiler.period
                    profiler.enter(event)
            else:
                bracketed = profiler
                profiler.enter(event)
        try:
            event._run_callbacks()
        finally:
            _san._active = previous
            if bracketed is not None:
                bracketed.exit(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until simulated time reaches it (clock is advanced
          to exactly ``until`` even if no event lands there);
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        stop_value: list[Any] = []
        if isinstance(until, Event):
            target = until

            def _stop(ev: Event) -> None:
                stop_value.append(ev)
                raise StopSimulation()

            if target.callbacks is None:
                if not target._ok:
                    raise target._value
                return target._value
            target.callbacks.append(_stop)
            deadline = float("inf")
        elif until is None:
            target = None
            deadline = float("inf")
        else:
            target = None
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self._now})")

        try:
            scheduler = self._scheduler
            while scheduler.size and scheduler.peek_time() <= deadline:
                self.step()
        except StopSimulation:
            ev = stop_value[0]
            if self.sanitizer is not None:
                self.sanitizer.flush()
            if not ev._ok:
                ev._defused = True
                raise ev._value
            return ev._value
        if self.sanitizer is not None:
            # The final tie group has no successor to trigger its analysis.
            self.sanitizer.flush()
        if target is not None:
            raise SimulationError("run(until=event): queue drained before event triggered")
        if deadline != float("inf"):
            self._now = deadline
        return None
