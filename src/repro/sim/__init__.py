"""Deterministic discrete-event simulation kernel (SimPy-like subset)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
