"""Deterministic discrete-event simulation kernel (SimPy-like subset)."""

from .core import (
    LOW,
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Store
from .sanitizer import RaceSanitizer, SanitizerViolation

__all__ = [
    "LOW",
    "NORMAL",
    "URGENT",
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RaceSanitizer",
    "Resource",
    "SanitizerViolation",
    "SimulationError",
    "Store",
    "Timeout",
]
