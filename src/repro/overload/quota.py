"""Per-tenant token-bucket quotas on the simulated clock.

A :class:`TokenBucket` refills *lazily*: tokens are a pure function of
the last-touch timestamp and the clock, so no timer process exists to
perturb the event schedule (the same reason leases use absolute
expiries). All state is floats derived from sim time — deterministic
per seed by construction.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TokenBucket", "QuotaRegistry"]

#: ``retry_after`` reported when the bucket can never refill (rate 0).
_NEVER = 3600.0


class TokenBucket:
    """``rate`` tokens/second, holding at most ``burst`` tokens."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float):
        if rate < 0 or burst <= 0:
            raise ValueError("quota needs rate >= 0 and burst > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)  # a fresh tenant starts with full burst
        self.last = 0.0

    def _refill(self, now: float) -> None:
        if now > self.last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.last) * self.rate)
            self.last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, now: float, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will exist (0 when they already do)."""
        self._refill(now)
        deficit = n - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return _NEVER
        return deficit / self.rate


class QuotaRegistry:
    """Tenant name -> bucket. Tenants without a bucket are unmetered
    unless a default quota is configured (then one is minted per tenant
    on first sight, so a brand-new tenant cannot bypass metering)."""

    def __init__(self, default_rate: Optional[float] = None,
                 default_burst: Optional[float] = None):
        self.default_rate = default_rate
        self.default_burst = default_burst
        self._buckets: dict[str, TokenBucket] = {}

    def set_quota(self, tenant: str, rate: float, burst: float) -> None:
        self._buckets[tenant] = TokenBucket(rate, burst)

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None and self.default_rate is not None:
            bucket = TokenBucket(self.default_rate,
                                 self.default_burst or self.default_rate)
            self._buckets[tenant] = bucket
        return bucket

    def checkpoint_state(self) -> dict:
        """Snapshot section fragment: every bucket's fill and refill mark."""
        return {tenant: {
            "burst": bucket.burst,
            "last": bucket.last,
            "rate": bucket.rate,
            "tokens": round(bucket.tokens, 9),
        } for tenant, bucket in sorted(self._buckets.items())}

    def admit(self, tenant: str, now: float) -> tuple:
        """(admitted, retry_after) for one request from ``tenant``."""
        bucket = self.bucket(tenant)
        if bucket is None:
            return True, 0.0
        if bucket.try_take(now):
            return True, 0.0
        return False, bucket.retry_after(now)

    def snapshot(self, now: float) -> dict:
        return {tenant: {"tokens": round(self._buckets[tenant].tokens, 6),
                         "rate": self._buckets[tenant].rate,
                         "burst": self._buckets[tenant].burst}
                for tenant in sorted(self._buckets)}
