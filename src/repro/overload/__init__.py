"""Overload-control plane — admission, quotas, fair dispatch, shedding.

ROADMAP item 2: under open-loop load (arrivals do not slow down because
the system is busy) an unprotected federation *collapses* — queues grow
without bound, every request times out, goodput goes to zero. This
package makes saturation graceful instead:

* :class:`AdmissionController` — a bounded admission queue in front of a
  provider: reject-on-admit when the queue is full (or the request's
  deadline is already dead), drop-expired-on-dequeue so requests that
  died waiting never burn provider capacity;
* :class:`TokenBucket` / :class:`QuotaRegistry` — per-tenant rate
  quotas on the simulated clock (lazy refill, no timer processes);
* :class:`WeightedFairQueue` — virtual-time weighted-fair dispatch so a
  bursting tenant cannot starve the others; tie-breaks are by tenant
  name, making dispatch order independent of same-instant arrival
  shuffling (the ``REPRO_SHUFFLE_SEED`` harness);
* :class:`Overloaded` — the typed rejection callers see, carrying a
  retry-after hint. It crosses the provider boundary as a context
  marker (``OVERLOAD_PATH``) on an otherwise *successful* RPC, so
  circuit breakers never mistake shed load for provider failure.

See DESIGN.md §10 for the admission → queue → dispatch → shed decision
table.
"""

from .admission import AdmissionController
from .dispatch import WeightedFairQueue
from .errors import (
    OVERLOAD_PATH,
    Overloaded,
    mark_overloaded,
    rejection_marker,
)
from .quota import QuotaRegistry, TokenBucket

__all__ = [
    "AdmissionController",
    "OVERLOAD_PATH",
    "Overloaded",
    "QuotaRegistry",
    "TokenBucket",
    "WeightedFairQueue",
    "mark_overloaded",
    "rejection_marker",
]
