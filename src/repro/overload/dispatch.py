"""Weighted-fair dispatch — start-time fair queuing over tenants.

Classic virtual-time SFQ: every queued item carries a *finish tag*
``max(v, last_finish[tenant]) + cost/weight`` where ``v`` is the queue's
virtual time (advanced to the tag of each dispatched item). Backlogged
tenants then drain in proportion to their weights, and no backlogged
tenant starves: its next tag is bounded by ``v + 1/weight``, so at most
``sum(weights)/weight`` other items can jump ahead of it.

Determinism contract: the heap orders by ``(tag, tenant, per-tenant
sequence)``. Tags depend only on each tenant's own arrival order (which
is causal — one tenant's arrivals come from one process) and on the
dispatch history, never on how *different* tenants' same-instant
arrivals interleave. Pop order is therefore byte-identical across
``REPRO_SHUFFLE_SEED`` values; the hypothesis suite in
``tests/overload/test_dispatch.py`` pins all three properties.
"""

from __future__ import annotations

import heapq
from typing import Optional

__all__ = ["WeightedFairQueue"]


class WeightedFairQueue:
    """A priority queue that is fair across tenants, by weight."""

    def __init__(self, weights: Optional[dict] = None,
                 default_weight: float = 1.0):
        if default_weight <= 0:
            raise ValueError("weights must be positive")
        self.default_weight = float(default_weight)
        self._weights: dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            self.set_weight(tenant, weight)
        self._heap: list = []
        self._last_finish: dict[str, float] = {}
        self._seq: dict[str, int] = {}
        self._vtime = 0.0

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {tenant!r} weight must be positive")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def push(self, tenant: str, item) -> None:
        tag = (max(self._vtime, self._last_finish.get(tenant, 0.0))
               + 1.0 / self.weight_of(tenant))
        self._last_finish[tenant] = tag
        seq = self._seq.get(tenant, 0)
        self._seq[tenant] = seq + 1
        heapq.heappush(self._heap, (tag, tenant, seq, item))

    def checkpoint_state(self) -> dict:
        """Snapshot section fragment: virtual clock + per-tenant finish
        tags (queued items themselves belong to their waiters)."""
        return {
            "depth": len(self._heap),
            "last_finish": {tenant: tag for tenant, tag
                            in sorted(self._last_finish.items())},
            "seq": {tenant: seq for tenant, seq
                    in sorted(self._seq.items())},
            "vtime": self._vtime,
        }

    def pop(self):
        """The next item in weighted-fair order (None when empty)."""
        if not self._heap:
            return None
        tag, _tenant, _seq, item = heapq.heappop(self._heap)
        if tag > self._vtime:
            self._vtime = tag
        return item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def tenants_queued(self) -> dict:
        """tenant -> queued count (sorted; for snapshots/debugging)."""
        counts: dict[str, int] = {}
        for _tag, tenant, _seq, _item in self._heap:
            counts[tenant] = counts.get(tenant, 0) + 1
        return dict(sorted(counts.items()))
