"""Bounded, deadline-aware admission in front of a provider.

The controller makes the shed decision in exactly two places, and
nowhere else (DESIGN §10):

* **reject-on-admit** — at arrival, when the tenant's quota bucket is
  dry, the request's deadline is already expired, or the wait queue is
  at capacity. Rejection is *immediate* (no queue time burned) and
  carries a retry-after hint derived from the observed service time;
* **drop-expired-on-dequeue** — at dispatch, a queued request whose
  deadline died while waiting is failed without ever occupying an
  execution slot. Dead requests must not burn provider capacity: under
  saturation that capacity is precisely what keeps goodput above the
  floor.

Between those two points a request either executes or waits in the
(optionally weighted-fair) queue; admission never re-orders or times
out work on its own clock, so no timer processes exist to perturb the
deterministic schedule — waiters wake only from :meth:`release`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..snapshot.registry import register_participant
from .dispatch import WeightedFairQueue
from .errors import Overloaded
from .quota import QuotaRegistry

__all__ = ["AdmissionController"]

#: Rejection reasons get pre-registered counters so metric snapshots have
#: a stable shape whether or not a run ever sheds for that reason.
_REASONS = ("queue-full", "expired", "expired-in-queue", "quota")


class _Waiter:
    __slots__ = ("event", "tenant", "deadline", "enqueued")

    def __init__(self, event, tenant: str, deadline, enqueued: float):
        self.event = event
        self.tenant = tenant
        self.deadline = deadline
        self.enqueued = enqueued


class AdmissionController:
    """Bounded admission queue + slot pool for one provider.

    Attach as ``provider.admission``;
    :meth:`~repro.sorcer.provider.ServiceProvider.service` consults it
    around every exertion. ``fair`` plugs in a
    :class:`~repro.overload.dispatch.WeightedFairQueue`; without it the
    wait queue is plain FIFO. ``quotas`` meters tenants at the door.
    """

    def __init__(self, env, name: str, registry, events=None,
                 max_inflight: int = 8, max_queue: int = 32,
                 quotas: Optional[QuotaRegistry] = None,
                 fair: Optional[WeightedFairQueue] = None,
                 default_service_time: float = 0.1):
        if max_inflight < 1 or max_queue < 0:
            raise ValueError("need max_inflight >= 1 and max_queue >= 0")
        self.env = env
        self.name = name
        self.events = events
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.quotas = quotas
        self.fair = fair
        self.inflight = 0
        self._fifo: deque = deque()
        #: EWMA of observed service time, seeding the retry-after hint.
        self._service_ewma = float(default_service_time)
        self._m_admitted = registry.counter("overload.admitted",
                                            provider=name)
        self._m_rejected = {
            reason: registry.counter("overload.rejected", provider=name,
                                     reason=reason)
            for reason in _REASONS}
        self._m_depth = registry.gauge("overload.queue_depth", provider=name)
        self._m_wait = registry.histogram("overload.queue_wait",
                                          provider=name)
        register_participant(env, f"overload.admission.{name}",
                             self.checkpoint_state)

    def checkpoint_state(self) -> dict:
        """Snapshot section: admission gate plus quota/fair-queue state."""
        state = dict(self.snapshot())
        if self.quotas is not None:
            state["quotas"] = self.quotas.checkpoint_state()
        if self.fair is not None:
            state["fair"] = self.fair.checkpoint_state()
        return state

    # -- queue plumbing (FIFO or weighted-fair) ---------------------------------

    def _queue_len(self) -> int:
        return len(self.fair) if self.fair is not None else len(self._fifo)

    def _enqueue(self, waiter: _Waiter) -> None:
        if self.fair is not None:
            self.fair.push(waiter.tenant, waiter)
        else:
            self._fifo.append(waiter)
        self._m_depth.set(self._queue_len())

    def _dequeue(self) -> Optional[_Waiter]:
        if self.fair is not None:
            return self.fair.pop()
        return self._fifo.popleft() if self._fifo else None

    # -- the two decision points ------------------------------------------------

    def _reject(self, reason: str, tenant: str,
                retry_after: float) -> Overloaded:
        self._m_rejected[reason].inc()
        exc = Overloaded(reason, retry_after=retry_after, tenant=tenant,
                         provider=self.name)
        if self.events is not None:
            self.events.emit("overload_shed", provider=self.name,
                             tenant=tenant, reason=reason,
                             retry_after=round(retry_after, 6))
        return exc

    def _retry_hint(self) -> float:
        """When the backlog ahead of a new arrival should have drained."""
        backlog = self._queue_len() + 1
        return round(backlog * self._service_ewma / self.max_inflight, 6)

    def acquire(self, tenant: str = "anonymous", deadline=None):
        """Admit one request (a generator — ``yield from`` it). Returns
        when an execution slot is held; raises :class:`Overloaded` when
        the request is shed instead."""
        now = self.env.now
        if self.quotas is not None:
            admitted, retry_after = self.quotas.admit(tenant, now)
            if not admitted:
                raise self._reject("quota", tenant, retry_after)
        if deadline is not None and deadline.expired(now):
            raise self._reject("expired", tenant, 0.0)
        if self.inflight < self.max_inflight and self._queue_len() == 0:
            self.inflight += 1
            self._m_admitted.inc()
            return
        if self._queue_len() >= self.max_queue:
            raise self._reject("queue-full", tenant, self._retry_hint())
        waiter = _Waiter(self.env.event(), tenant, deadline, now)
        self._enqueue(waiter)
        outcome = yield waiter.event
        if isinstance(outcome, Overloaded):
            raise outcome
        self._m_wait.observe(self.env.now - waiter.enqueued)

    def release(self, service_time: Optional[float] = None) -> None:
        """Return one execution slot and dispatch from the queue."""
        self.inflight -= 1
        if service_time is not None and service_time >= 0:
            self._service_ewma += 0.2 * (service_time - self._service_ewma)
        self._dispatch()

    def _dispatch(self) -> None:
        now = self.env.now
        while self.inflight < self.max_inflight:
            waiter = self._dequeue()
            if waiter is None:
                break
            if waiter.deadline is not None and waiter.deadline.expired(now):
                # Died in the queue: shed without burning a slot.
                exc = self._reject("expired-in-queue", waiter.tenant, 0.0)
                waiter.event.succeed(exc)
                continue
            self.inflight += 1
            self._m_admitted.inc()
            waiter.event.succeed(None)
        self._m_depth.set(self._queue_len())

    # -- observability -----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "provider": self.name,
            "inflight": self.inflight,
            "queued": self._queue_len(),
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "service_ewma": round(self._service_ewma, 6),
        }
