"""The typed overload rejection and its cross-hop marker.

An :class:`Overloaded` error is *not* a provider failure: the provider is
alive and answered — it chose to shed the request. The distinction
matters twice over:

* circuit breakers must not open on shed load (tripping a breaker on a
  healthy-but-busy provider converts an overload into an outage);
* callers should back off for ``retry_after`` instead of retrying
  immediately (an instant retry is exactly the storm amplification the
  admission queue exists to stop).

Because exertion results travel as *failed exertions* on successful RPCs
(never as raised network errors), the rejection crosses the provider
boundary as a plain dict at ``OVERLOAD_PATH`` in the service context —
the same convention ``resilience/deadline`` and ``composite/visited``
use. :func:`rejection_marker` recovers it on the caller side and
:meth:`Overloaded.from_marker` re-raises it typed.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["OVERLOAD_PATH", "Overloaded", "mark_overloaded",
           "rejection_marker"]

#: Service-context path carrying the rejection across provider hops.
OVERLOAD_PATH = "overload/rejection"

#: The closed set of rejection reasons (stable strings — they appear in
#: metrics labels, markers and verdict JSON).
REASONS = ("queue-full", "expired", "expired-in-queue", "quota")


class Overloaded(Exception):
    """A request was shed by admission control, not failed by a provider.

    ``retry_after`` is the provider's hint (seconds) for when capacity is
    likely to exist again; ``0.0`` means "unknown, use your own backoff".
    """

    def __init__(self, reason: str, retry_after: float = 0.0,
                 tenant: str = "anonymous", provider: str = "",
                 message: Optional[str] = None):
        self.reason = reason
        self.retry_after = float(retry_after)
        self.tenant = tenant
        self.provider = provider
        if message is None:
            message = (f"{provider or 'provider'} shed request "
                       f"({reason}, tenant={tenant!r}, "
                       f"retry after {self.retry_after:.3f}s)")
        super().__init__(message)

    def to_marker(self) -> dict:
        return {"reason": self.reason,
                "retry_after": round(self.retry_after, 6),
                "tenant": self.tenant,
                "provider": self.provider}

    @classmethod
    def from_marker(cls, marker: dict) -> "Overloaded":
        return cls(reason=marker.get("reason", "queue-full"),
                   retry_after=float(marker.get("retry_after", 0.0)),
                   tenant=marker.get("tenant", "anonymous"),
                   provider=marker.get("provider", ""))


def mark_overloaded(context, exc: Overloaded) -> None:
    """Plant the rejection marker in a service context (provider side)."""
    context.put_value(OVERLOAD_PATH, exc.to_marker())


def rejection_marker(context) -> Optional[dict]:
    """The rejection marker of a failed result, or ``None`` — the caller
    side's one-line check for "was this shed rather than failed"."""
    marker = context.get_value(OVERLOAD_PATH, None)
    return dict(marker) if isinstance(marker, dict) else None
