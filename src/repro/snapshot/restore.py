"""Restore a federation from a snapshot file and continue the run.

The restore contract (DESIGN §14): given a snapshot taken at sim time T
during some run, ``restore_run`` in a *fresh process* must produce,
for the continuation beyond T, byte-identical outputs — ``status
--json``, trace JSONL, chaos verdicts — to the original uninterrupted
run. That holds for both kernel schedulers and any tie-break shuffle
seed, because the snapshot records them in its program spec and the
replay forces them.

Mechanically restore is record/replay: read and validate the envelope
(:func:`repro.snapshot.format.read_snapshot` — torn files raise
:class:`~repro.snapshot.format.SnapshotCorrupt` before any state is
touched), rebuild the program from the spec, re-run it with a
:class:`~repro.snapshot.checkpoint.Checkpointer` on the identical
schedule, and at the recorded checkpoint index compare the replayed
state document against the snapshot's — digest first, then a
section-level diff for the error message. A mismatch raises
:class:`~repro.snapshot.format.RestoreMismatch` at the checkpoint
instant, *before* the continuation runs; on a match the run simply
continues to completion and returns its outputs.
"""

from __future__ import annotations

from repro.snapshot.capture import state_digest
from repro.snapshot.format import (
    RestoreMismatch,
    SnapshotCorrupt,
    canonical_dumps,
    read_snapshot,
)
from repro.snapshot.programs import run_program

__all__ = ["restore_run", "diff_sections"]


def diff_sections(expected: dict, actual: dict) -> list:
    """Section keys whose canonical bytes differ between two captures."""
    differing = []
    for key in sorted(set(expected) | set(actual)):
        if key not in expected:
            differing.append(f"+{key}")
        elif key not in actual:
            differing.append(f"-{key}")
        elif canonical_dumps(expected[key]) != canonical_dumps(actual[key]):
            differing.append(key)
    return differing


def restore_run(path, continue_run: bool = True):
    """Restore from ``path``; returns ``(outputs, body)``.

    ``outputs`` is the program's output map (``None`` when
    ``continue_run`` is false — verification only). ``body`` is the
    validated snapshot document, so callers can report checkpoint
    metadata without re-reading the file.
    """
    body = read_snapshot(path)
    for field in ("program", "checkpoint", "state", "digest"):
        if field not in body:
            raise SnapshotCorrupt(f"{path}: snapshot body missing {field!r}")
    checkpoint = body["checkpoint"]
    expected_state = body["state"]
    expected_digest = body["digest"]
    if state_digest(expected_state) != expected_digest:
        raise SnapshotCorrupt(
            f"{path}: recorded digest does not match recorded state")
    target_index = checkpoint["index"]
    verified = []

    def verify(index, at, state, digest):
        if index != target_index:
            return
        if digest != expected_digest:
            sections = diff_sections(expected_state, state)
            raise RestoreMismatch(
                f"replayed state diverges from snapshot at checkpoint "
                f"{index} (t={at}); differing sections: "
                f"{', '.join(sections) or 'digest only'}")
        verified.append(index)
        if not continue_run:
            raise _StopReplay()

    try:
        outputs, _ = run_program(body["program"],
                                 checkpoint_at=checkpoint["schedule"],
                                 on_capture=verify)
    except _StopReplay:
        return None, body
    if target_index not in verified:
        raise RestoreMismatch(
            f"replay never reached checkpoint index {target_index} "
            f"(schedule {checkpoint['schedule']})")
    return outputs, body


class _StopReplay(BaseException):
    """Internal: abort the replay right after a verify-only restore.

    Derives from ``BaseException`` so the simulated program cannot
    accidentally swallow it with a broad ``except Exception``.
    """
