"""Snapshot participant registry — who owns which checkpointed section.

Every module that holds federation state registers a *participant* on its
environment at construction time: a stable section key plus a zero-arg
provider returning that module's declarative state. The capture pass
(:mod:`repro.snapshot.capture`) walks the registry in sorted key order,
so the snapshot body is byte-stable regardless of build order.

The registry deliberately imports nothing from the rest of the package
(and nothing non-stdlib): state owners across every layer — jini,
resilience, observability, overload, load, sensors — import this module,
and it must never create an import cycle back through them.

Contract for providers (enforced socially + by the equivalence suite):

* **non-mutating** — a provider must not move counters, consume RNG
  draws, or touch the event queue; capture runs between events and the
  run must be byte-identical with or without it;
* **deterministic** — same run, same sim time ⇒ same returned value;
* **JSON-able after** :func:`repro.snapshot.capture.jsonable` — plain
  dicts/lists/strings/numbers (tuples become lists, sets must be sorted
  by the provider itself).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["register_participant", "participants"]

_ATTR = "_snapshot_participants"


def register_participant(env, key: str, provider: Callable[[], dict]) -> None:
    """Register ``provider`` as the owner of snapshot section ``key``.

    Keys must be unique per environment — a duplicate means two modules
    claim the same state, which is exactly the bug the state-ownership
    table (DESIGN §14) exists to prevent, so it raises immediately.
    """
    table = getattr(env, _ATTR, None)
    if table is None:
        table = {}
        setattr(env, _ATTR, table)
    if key in table:
        raise ValueError(f"snapshot section {key!r} already registered")
    table[key] = provider


def participants(env) -> list:
    """All registered ``(key, provider)`` pairs in sorted key order."""
    table = getattr(env, _ATTR, None)
    if not table:
        return []
    return sorted(table.items())
