"""Recorded programs: how a snapshot's run is rebuilt and replayed.

CPython cannot pickle generator frames, so a snapshot does not try to
freeze in-flight processes. Instead every snapshot records a **program
spec** — a small JSON document naming a program kind plus the exact
inputs (seed, scenario, plan, kernel scheduler, tie-break seed) that
deterministically reproduce the run. Restore rebuilds the program from
the spec, replays it with an identically-scheduled
:class:`~repro.snapshot.checkpoint.Checkpointer`, verifies the replayed
state against the captured state at the checkpoint, and continues.

Two program kinds cover the repo's end-to-end surfaces:

* ``status`` — the paper-lab deployment, optional §VI six-step browser
  experiment, settle to a fixed sim time; outputs the canonical
  ``status --json`` document and the trace JSONL (the byte-equivalence
  oracles used across DESIGN §12);
* ``campaign`` — one chaos campaign run of a recorded
  :class:`~repro.chaos.plan.ChaosPlan`; outputs the canonical verdict
  JSON.

The kernel scheduler and tie-break seed live in the spec because they
are inputs to event ordering: drivers force the recorded values through
the environment variables for the duration of the scenario build, then
restore whatever the process had (so a restore on a machine configured
for the other kernel still replays faithfully).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.snapshot.checkpoint import Checkpointer

__all__ = [
    "forced_kernel",
    "six_step_experiment",
    "status_spec",
    "campaign_spec",
    "run_program",
    "spec_from_env",
]


@contextmanager
def forced_kernel(scheduler, tie_break_seed):
    """Force the kernel scheduler / shuffle seed for a scenario build."""
    from repro.sim.core import KERNEL_SCHEDULER_ENV, SHUFFLE_SEED_ENV
    saved = {
        KERNEL_SCHEDULER_ENV: os.environ.get(KERNEL_SCHEDULER_ENV),
        SHUFFLE_SEED_ENV: os.environ.get(SHUFFLE_SEED_ENV),
    }
    if scheduler is not None:
        os.environ[KERNEL_SCHEDULER_ENV] = scheduler
    if tie_break_seed is None:
        os.environ.pop(SHUFFLE_SEED_ENV, None)
    else:
        os.environ[SHUFFLE_SEED_ENV] = str(tie_break_seed)
    try:
        yield
    finally:
        for key, value in sorted(saved.items()):
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def spec_from_env(spec: dict, env) -> dict:
    """Stamp the live kernel's scheduler/tie seed into a program spec."""
    out = dict(spec)
    out["scheduler"] = env.scheduler_stats()["kind"]
    out["tie_break_seed"] = env.tie_break_seed
    return out


def six_step_experiment(browser):
    """The §VI six-step browser experiment (single source of truth —
    the CLI's ``experiment``/``status`` commands run this same body)."""
    yield from browser.compose_service(
        "Composite-Service",
        ["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"])
    yield from browser.add_expression("Composite-Service", "(a + b + c)/3")
    yield from browser.create_service("New-Composite")
    yield from browser.compose_service(
        "New-Composite", ["Composite-Service", "Coral-Sensor"])
    yield from browser.add_expression("New-Composite", "(a + b)/2")
    value = yield from browser.get_value("New-Composite")
    yield from browser.get_info("New-Composite")
    yield from browser.refresh_topology()
    return value


# -- spec constructors -------------------------------------------------------

def status_spec(seed: int = 2009, until: float = 30.0,
                six_steps: bool = True, scheduler: str | None = None,
                tie_break_seed: int | None = None) -> dict:
    return {
        "kind": "status",
        "scheduler": scheduler,
        "seed": int(seed),
        "six_steps": bool(six_steps),
        "tie_break_seed": tie_break_seed,
        "until": float(until),
    }


def campaign_spec(plan_dict: dict, scenario: str = "paper-lab",
                  scheduler: str | None = None,
                  tie_break_seed: int | None = None) -> dict:
    return {
        "kind": "campaign",
        "plan": plan_dict,
        "scenario": scenario,
        "scheduler": scheduler,
        "tie_break_seed": tie_break_seed,
    }


# -- drivers -----------------------------------------------------------------

def _run_status(spec: dict, checkpoint_at, sink, on_capture):
    from repro.observability import status_json, trace_to_jsonl, tracer_of
    from repro.scenarios import build_paper_lab

    with forced_kernel(spec.get("scheduler"), spec.get("tie_break_seed")):
        lab = build_paper_lab(seed=spec["seed"])
    env = lab.env
    recorded = spec_from_env(spec, env)
    checkpointer = None
    if checkpoint_at:
        checkpointer = Checkpointer(env, checkpoint_at, sink=sink,
                                    program=recorded, label="status",
                                    on_capture=on_capture)
    lab.settle(6.0)
    if spec.get("six_steps", True):
        env.run(until=env.process(six_step_experiment(lab.browser),
                                  name="six-steps"))
    if env.now < spec["until"]:
        env.run(until=spec["until"])
    outputs = {
        "status": status_json(lab.health.snapshot(), seed=spec["seed"]),
        "trace": trace_to_jsonl(tracer_of(lab.net)),
    }
    return outputs, checkpointer


def _run_campaign(spec: dict, checkpoint_at, sink, on_capture):
    from repro.chaos import CampaignRunner, ChaosPlan, verdict_json

    plan = ChaosPlan.from_dict(spec["plan"])
    runner = CampaignRunner(scenario=spec.get("scenario", "paper-lab"))
    holder: list = []

    def factory(env):
        recorded = spec_from_env(spec, env)
        checkpointer = Checkpointer(env, checkpoint_at, sink=sink,
                                    program=recorded, label="campaign",
                                    on_capture=on_capture)
        holder.append(checkpointer)
        return checkpointer

    with forced_kernel(spec.get("scheduler"), spec.get("tie_break_seed")):
        verdict = runner.run_plan(
            plan, checkpointer=factory if checkpoint_at else None)
    outputs = {"verdict": verdict_json(verdict)}
    return outputs, (holder[0] if holder else None)


_PROGRAMS = {
    "campaign": _run_campaign,
    "status": _run_status,
}


def run_program(spec: dict, checkpoint_at=(), sink=None, on_capture=None):
    """Run a recorded program end to end.

    Returns ``(outputs, checkpointer)`` where ``outputs`` maps output
    names to canonical text and ``checkpointer`` is ``None`` when no
    checkpoint schedule was requested. The byte contents of ``outputs``
    are the equivalence oracle: an uninterrupted run and a
    restore-and-continue of the same spec must agree exactly.
    """
    kind = spec.get("kind")
    if kind not in _PROGRAMS:
        raise ValueError(f"unknown snapshot program kind {kind!r}; "
                         f"known: {', '.join(sorted(_PROGRAMS))}")
    return _PROGRAMS[kind](spec, tuple(checkpoint_at), sink, on_capture)
