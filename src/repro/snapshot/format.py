"""The on-disk snapshot envelope: canonical, versioned, torn-write-proof.

A snapshot file is exactly two ``\\n``-terminated lines of JSON:

* **header** — ``{"format": "repro-snapshot", "version": 1,
  "length": <body bytes>, "sha256": <body digest>}`` with canonical key
  order;
* **body** — the canonical JSON state document produced by
  :mod:`repro.snapshot.capture`.

Files are written through :class:`repro.util.atomicio.AtomicFile`
(tmp + fsync + rename), so a crash mid-write leaves either the previous
file or nothing. A torn read — truncation at *any* byte offset, a
flipped bit, a concatenated tail — fails one of the envelope checks
(header parse, declared length, sha256) and raises the typed
:class:`SnapshotCorrupt`; no partially-decoded state ever escapes.

Version bumps are deliberate: an unknown ``version`` raises
:class:`SnapshotVersionError` rather than guessing at field semantics.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.util.atomicio import atomic_write_bytes

__all__ = [
    "FORMAT",
    "VERSION",
    "SnapshotError",
    "SnapshotCorrupt",
    "SnapshotVersionError",
    "RestoreMismatch",
    "canonical_dumps",
    "write_snapshot",
    "read_snapshot",
]

FORMAT = "repro-snapshot"
VERSION = 1


class SnapshotError(Exception):
    """Base class for every snapshot/restore failure."""


class SnapshotCorrupt(SnapshotError):
    """The file on disk is not a complete, intact snapshot."""


class SnapshotVersionError(SnapshotError):
    """The snapshot is intact but written by an incompatible version."""


class RestoreMismatch(SnapshotError):
    """Replayed state disagrees with the captured state at the checkpoint."""


def canonical_dumps(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace, trailing newline."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def write_snapshot(path, body: dict) -> str:
    """Write ``body`` to ``path`` atomically; return the body sha256."""
    body_bytes = canonical_dumps(body).encode("utf-8")
    digest = hashlib.sha256(body_bytes).hexdigest()
    header = canonical_dumps({
        "format": FORMAT,
        "length": len(body_bytes),
        "sha256": digest,
        "version": VERSION,
    }).encode("utf-8")
    atomic_write_bytes(path, header + body_bytes)
    return digest


def read_snapshot(path) -> dict:
    """Read and validate a snapshot file, returning the body document.

    Raises :class:`SnapshotCorrupt` on any structural damage and
    :class:`SnapshotVersionError` on a format/version mismatch. Both fire
    before any state is handed to a restorer.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotCorrupt(f"cannot read snapshot {path}: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise SnapshotCorrupt(f"{path}: truncated before header terminator")
    header_bytes, body_bytes = raw[: newline + 1], raw[newline + 1 :]
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotCorrupt(f"{path}: header is not valid JSON") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise SnapshotVersionError(f"{path}: not a {FORMAT} file")
    if header.get("version") != VERSION:
        raise SnapshotVersionError(
            f"{path}: snapshot version {header.get('version')!r}, "
            f"this build reads version {VERSION}")
    declared = header.get("length")
    if not isinstance(declared, int) or declared != len(body_bytes):
        raise SnapshotCorrupt(
            f"{path}: body is {len(body_bytes)} bytes, header declares "
            f"{declared!r} (torn write?)")
    digest = hashlib.sha256(body_bytes).hexdigest()
    if digest != header.get("sha256"):
        raise SnapshotCorrupt(f"{path}: body sha256 mismatch")
    try:
        body = json.loads(body_bytes)
    except ValueError as exc:  # pragma: no cover - checksum makes this
        raise SnapshotCorrupt(f"{path}: body is not valid JSON") from exc
    if not isinstance(body, dict):
        raise SnapshotCorrupt(f"{path}: body is not a JSON object")
    return body
