"""The Checkpointer — a sim process that captures state at fixed times.

A :class:`Checkpointer` is itself part of the simulated program: it runs
as a LOW-priority process with an explicit schedule of absolute sim
times, so every checkpoint lands *after* all ordinary events at that
instant, at a position that is part of the deterministic event order.
That is the crux of the restore contract — a restored run re-creates the
Checkpointer with the identical schedule, so its timeouts consume the
same tie-break RNG draws and sequence numbers as the original run, and
the continuation beyond the checkpoint is byte-identical.

Captures accumulate on :attr:`Checkpointer.captures`; when a ``sink``
path and ``program`` spec are given, each capture is also written to
disk as a complete restartable snapshot file via
:func:`repro.snapshot.format.write_snapshot` (atomic, checksummed).
"""

from __future__ import annotations

from pathlib import Path

from repro.sim import LOW, Interrupt
from repro.snapshot.capture import capture_state, state_digest
from repro.snapshot.format import write_snapshot

__all__ = ["Checkpointer", "snapshot_document"]


def snapshot_document(program: dict, schedule, index: int, at: float,
                      state: dict, label: str = "") -> dict:
    """Assemble the full on-disk snapshot body for one checkpoint."""
    return {
        "checkpoint": {
            "at": at,
            "index": index,
            "label": label,
            "schedule": [float(t) for t in schedule],
        },
        "digest": state_digest(state),
        "program": program,
        "state": state,
    }


class Checkpointer:
    """Capture federation state at each absolute time in ``at``.

    ``sink`` may be a directory (one ``checkpoint-<index>.snap`` per
    capture) or a single file path (overwritten atomically each capture,
    keeping only the latest — the classic crash-recovery shape).
    """

    def __init__(self, env, at, sink=None, program: dict | None = None,
                 label: str = "checkpoint", on_capture=None):
        self.env = env
        self.schedule = sorted(float(t) for t in at)
        self.sink = Path(sink) if sink is not None else None
        self.program = program
        self.label = label
        #: Optional ``(index, at, state, digest)`` hook, invoked at the
        #: checkpoint instant — restore uses it to verify replayed state
        #: *before* the continuation proceeds.
        self.on_capture = on_capture
        #: ``(index, at, state, digest)`` per capture, in order.
        self.captures: list = []
        #: Paths written, parallel to :attr:`captures` (empty without sink).
        self.written: list = []
        self.process = env.process(self._run(), name=f"snapshot:{label}")

    def _path_for(self, index: int) -> Path:
        assert self.sink is not None
        if self.sink.suffix:
            return self.sink
        return self.sink / f"checkpoint-{index}.snap"

    def _capture(self, index: int, at: float) -> None:
        state = capture_state(self.env)
        digest = state_digest(state)
        self.captures.append((index, at, state, digest))
        if self.sink is None:
            return
        if self.program is None:
            raise ValueError("Checkpointer sink requires a program spec")
        body = snapshot_document(self.program, self.schedule, index, at,
                                 state, label=self.label)
        path = self._path_for(index)
        if self.sink.suffix is None or not self.sink.suffix:
            path.parent.mkdir(parents=True, exist_ok=True)
        write_snapshot(path, body)
        self.written.append(path)

    def _run(self):
        for index, at in enumerate(self.schedule):
            delay = at - self.env.now
            if delay < 0:
                continue
            try:
                yield self.env.timeout(delay, priority=LOW)
            except Interrupt:
                return
            self._capture(index, at)
            if self.on_capture is not None:
                self.on_capture(*self.captures[-1])
