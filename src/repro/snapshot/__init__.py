"""Crash-safe federation snapshot/restore (``repro.snapshot``).

Checkpoint a running federation — sim clock and pending event set,
registries and leases, resilience and overload state, RNG positions —
to a canonical, versioned, atomically-written file; restore it in a
fresh process and continue with byte-identical outputs.

Submodules (resolved lazily, PEP 562 — state owners across the tree
import :mod:`repro.snapshot.registry` at construction time, and that
must not drag the scenario/restore machinery into their import graph):

* :mod:`repro.snapshot.registry` — participant registration (stdlib-only);
* :mod:`repro.snapshot.format` — the two-line envelope, typed errors;
* :mod:`repro.snapshot.capture` — declarative state capture + digest;
* :mod:`repro.snapshot.checkpoint` — the in-sim Checkpointer process;
* :mod:`repro.snapshot.programs` — recorded program specs and drivers;
* :mod:`repro.snapshot.restore` — validate, replay, verify, continue.
"""

from __future__ import annotations

import importlib

from .format import (
    RestoreMismatch,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotVersionError,
)
from .registry import participants, register_participant

_SUBMODULES = frozenset({
    "capture",
    "checkpoint",
    "format",
    "programs",
    "registry",
    "restore",
})

__all__ = [
    "RestoreMismatch",
    "SnapshotCorrupt",
    "SnapshotError",
    "SnapshotVersionError",
    "participants",
    "register_participant",
    *sorted(_SUBMODULES),
]


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SUBMODULES)
