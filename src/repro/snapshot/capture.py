"""Declarative state capture for a running federation.

:func:`capture_state` walks a live :class:`repro.sim.Environment` and
produces one JSON-able document describing everything the federation
holds at this instant: the kernel section (sim clock, scheduler kind and
operation counters, tie-break RNG position, every pending event in pop
order) plus one section per registered snapshot participant
(:mod:`repro.snapshot.registry`), in sorted key order.

Capture is strictly **non-mutating**: it uses the schedulers'
non-destructive ``entries()`` view, reads counters without moving them,
and hashes RNG state instead of drawing from it. A run is byte-identical
with capture enabled or disabled — that property is what makes the
restore-and-continue equivalence contract testable at all.

CPython generators cannot be serialised, so the body is not by itself
enough to *resurrect* in-flight processes; restore
(:mod:`repro.snapshot.restore`) rebuilds the program from the recorded
spec, replays deterministically to the checkpoint, and verifies the
recomputed document against this one via :func:`state_digest`. The full
declarative capture still earns its bytes twice over: it is the
integrity oracle for that verification, and a human-readable record of
exactly what the federation held at the checkpoint.
"""

from __future__ import annotations

import hashlib
import zlib

from repro.snapshot.format import canonical_dumps
from repro.snapshot.registry import participants

__all__ = ["capture_state", "state_digest", "jsonable"]


def jsonable(value):
    """Coerce ``value`` into plain JSON types, deterministically.

    Tuples become lists, mappings keep insertion order (providers sort
    where order is not already deterministic), and anything exotic falls
    back to ``repr`` — which is stable for the dataclasses and enums the
    participants return.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(item) for item in value)
    return repr(value)


def _describe_event(entry) -> dict:
    time, priority, tie, seq, event = entry
    name = getattr(event, "name", None)
    return {
        "name": name if isinstance(name, str) else None,
        "prio": priority,
        "seq": seq,
        "t": time,
        "tie": tie,
        "type": type(event).__name__,
    }


def capture_state(env) -> dict:
    """One declarative document covering kernel + every participant."""
    stats = env.scheduler_stats()
    tie_rng = getattr(env, "_tie_rng", None)
    kernel = {
        "now": env.now,
        # Every `_schedule` issues exactly one seq and one push, so the
        # push counter *is* the next-seq position without peeking the
        # itertools.count.
        "seqs_issued": stats["pushes"],
        "scheduler": stats["kind"],
        "tie_break_seed": env.tie_break_seed,
        "tie_rng_crc32": (zlib.crc32(repr(tie_rng.getstate()).encode("utf-8"))
                          if tie_rng is not None else None),
        "pending": [_describe_event(entry) for entry in env.pending()],
    }
    body = {"kernel": kernel}
    for key, provider in participants(env):
        body[key] = jsonable(provider())
    return body


def state_digest(body: dict) -> str:
    """sha256 of the canonical serialisation of a captured document."""
    return hashlib.sha256(canonical_dumps(body).encode("utf-8")).hexdigest()
